"""Characterized technology library (the OpenROAD + Nangate45 substitute).

Cayman retrieves the delay and area of datapath operations and interface
components "by synthesizing them with OpenROAD targeting the Nangate45 PDK"
(paper §III-F).  Offline we freeze that characterization into a table: each
resource class carries a combinational delay (for operator chaining), a
pipeline latency in cycles at the target clock, and a placement area.  The
numbers approximate Nangate45 synthesis results at the paper's 500 MHz
target and — more importantly — preserve the *relative* costs the algorithms
depend on (float ops ≫ int ops ≫ logic; SRAM macros and DMA engines dominate
interface area; FSM control logic is cheap compared to datapaths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Target accelerator clock (500 MHz, paper §IV-A).
DEFAULT_CLOCK_NS = 2.0

#: Area of the reference CVA6 RISC-V tile in um^2 (areas in Table II are
#: reported as ratios to this tile, paper §IV-A).
CVA6_TILE_AREA_UM2 = 2_500_000.0


@dataclass(frozen=True)
class OpInfo:
    """Characterization entry for one datapath resource class.

    ``delay_ns``  — combinational delay through the unit (chaining budget).
    ``cycles``    — pipeline latency in cycles when the op is registered;
                    0 means purely combinational (chainable within a cycle).
    ``area_um2``  — cell area for a 32-bit instance.
    ``pipelined`` — True if a new input can be issued every cycle.
    """

    delay_ns: float
    cycles: int
    area_um2: float
    pipelined: bool = True


# 32-bit characterization.  64-bit instances scale by _WIDTH_FACTOR.
_OPS: Dict[str, OpInfo] = {
    # Integer ALU class.
    "add": OpInfo(0.9, 0, 320.0),
    "sub": OpInfo(0.9, 0, 330.0),
    "and": OpInfo(0.2, 0, 90.0),
    "or": OpInfo(0.2, 0, 90.0),
    "xor": OpInfo(0.25, 0, 110.0),
    "shl": OpInfo(0.5, 0, 380.0),
    "shr": OpInfo(0.5, 0, 380.0),
    "neg": OpInfo(0.5, 0, 170.0),
    "not": OpInfo(0.1, 0, 60.0),
    "icmp": OpInfo(0.7, 0, 210.0),
    "select": OpInfo(0.3, 0, 120.0),
    # Integer multiply / divide.
    "mul": OpInfo(1.8, 1, 3100.0),
    "div": OpInfo(1.9, 16, 7800.0, pipelined=False),
    "rem": OpInfo(1.9, 16, 7900.0, pipelined=False),
    # Floating point (32-bit, IEEE-754).
    "fadd": OpInfo(1.9, 2, 4200.0),
    "fsub": OpInfo(1.9, 2, 4300.0),
    "fmul": OpInfo(1.9, 2, 5200.0),
    "fdiv": OpInfo(1.9, 12, 12500.0, pipelined=False),
    "fneg": OpInfo(0.1, 0, 80.0),
    "fsqrt": OpInfo(1.9, 10, 9800.0, pipelined=False),
    "fabs": OpInfo(0.1, 0, 70.0),
    "fcmp": OpInfo(1.2, 0, 900.0),
    # Conversions.
    "sitofp": OpInfo(1.6, 1, 2100.0),
    "fptosi": OpInfo(1.6, 1, 2200.0),
    "sext": OpInfo(0.05, 0, 20.0),
    "zext": OpInfo(0.05, 0, 10.0),
    "trunc": OpInfo(0.05, 0, 10.0),
    "fpext": OpInfo(0.3, 0, 400.0),
    "fptrunc": OpInfo(0.4, 0, 500.0),
    # Address computation (folded adders/shifters).
    "gep": OpInfo(0.9, 0, 450.0),
    # phi nodes are multiplexers selected by the FSM.
    "phi": OpInfo(0.3, 0, 140.0),
    # Control handled by the FSM; no datapath cost here.
    "control": OpInfo(0.0, 0, 0.0),
    "alloca": OpInfo(0.0, 0, 0.0),
    "call": OpInfo(0.0, 0, 0.0),
    # Memory ops get latency from the interface model; the listed entry is
    # the issue logic only (see interface component areas below).
    "load": OpInfo(0.8, 1, 250.0),
    "store": OpInfo(0.8, 1, 250.0),
}

_WIDTH_FACTOR_64 = 2.1
_DELAY_FACTOR_64 = 1.25

# Sub-32-bit area scaling (the bitwidth analysis produces widths like 7 or
# 14).  Narrow instances keep a fixed overhead floor (I/O buffering, cell
# granularity) and otherwise scale linearly with width for carry/logic
# structures and quadratically for array multipliers/dividers.  Delay is
# left at the 32-bit characterization below 32 bits — conservative, and it
# keeps schedules (latency) invariant under narrowing.
_QUADRATIC_RESOURCES = frozenset({"mul", "div", "rem"})
#: Width-independent classes: memory issue logic, control, call/alloca
#: bookkeeping, float ops (floats only exist at 32/64 bits) and comparators
#: (an icmp produces i1 but is sized by its operand width, which the result
#: type doesn't carry — keep the 32-bit characterization).
_FIXED_BELOW_32 = frozenset({
    "load", "store", "control", "alloca", "call",
    "fadd", "fsub", "fmul", "fdiv", "fneg", "fsqrt", "fabs", "fcmp",
    "sitofp", "fptosi", "fpext", "fptrunc", "icmp",
})
_NARROW_FLOOR = 0.08


def _area_factor(resource: str, bits: int) -> float:
    """Area multiplier vs the 32-bit characterization point.  Exactly 1.0
    at 32 bits and ``_WIDTH_FACTOR_64`` at 64 bits (the legacy anchors);
    linear interpolation between them; piecewise linear/quadratic below."""
    bits = max(1, min(64, bits))
    if bits == 32:
        return 1.0
    if bits >= 64:
        return _WIDTH_FACTOR_64
    if bits > 32:
        return 1.0 + (bits - 32) / 32.0 * (_WIDTH_FACTOR_64 - 1.0)
    if resource in _FIXED_BELOW_32:
        return 1.0
    ratio = bits / 32.0
    if resource in _QUADRATIC_RESOURCES:
        return _NARROW_FLOOR + (1.0 - _NARROW_FLOOR) * ratio * ratio
    return _NARROW_FLOOR + (1.0 - _NARROW_FLOOR) * ratio


def _delay_factor(bits: int) -> float:
    bits = max(1, min(64, bits))
    if bits <= 32:
        return 1.0
    if bits >= 64:
        return _DELAY_FACTOR_64
    return 1.0 + (bits - 32) / 32.0 * (_DELAY_FACTOR_64 - 1.0)


# -- Interface component characterization (paper §III-C, Fig. 3) --------------

#: Load/store unit shared by coupled accesses.
LSU_AREA_UM2 = 1_600.0
#: Address generation unit of a decoupled interface port.
AGU_AREA_UM2 = 950.0
#: Data buffering FIFO (8-deep, 32-bit) of a decoupled interface port.
FIFO_AREA_UM2 = 2_100.0
#: DMA engine of a scratchpad interface.
DMA_AREA_UM2 = 5_400.0
#: SRAM macro overhead + per-byte cost of a scratchpad buffer.
SPAD_BASE_AREA_UM2 = 1_200.0
SPAD_BYTE_AREA_UM2 = 1.6

#: Memory-system round-trip latency seen by a *coupled* access (cycles).
COUPLED_LOAD_LATENCY = 6
COUPLED_STORE_LATENCY = 2
#: Latency of a *decoupled* FIFO pop/push once the AGU has run ahead.
DECOUPLED_LATENCY = 1
#: Latency of a *scratchpad* buffer access.
SPAD_LATENCY = 1
#: DMA streaming bandwidth: bytes transferred per cycle per engine.
DMA_BYTES_PER_CYCLE = 8
#: Scan-chain interface of QsCores-style OCAs [22], [23]: high latency and
#: low bandwidth (the port is busy for several cycles per word).
SCANCHAIN_LATENCY = 6
SCANCHAIN_OCCUPANCY = 2

#: Cycles to transfer one scalar argument / result between CPU and
#: accelerator and to trigger/synchronize an invocation.
OFFLOAD_OVERHEAD_CYCLES = 10

# -- Control / sequential element characterization ----------------------------

REGISTER_BIT_AREA_UM2 = 6.5
FSM_STATE_AREA_UM2 = 58.0
MUX2_BIT_AREA_UM2 = 2.8
CONFIG_BIT_AREA_UM2 = 7.0
#: Fixed control overhead of one accelerator (start/done logic, bus glue).
ACCELERATOR_BASE_AREA_UM2 = 2_800.0
#: Extra control overhead for an outer (non-synthesized) region's sequencing.
REGION_CTRL_AREA_UM2 = 220.0


class TechLibrary:
    """Queryable characterization table bound to a clock period."""

    def __init__(self, clock_ns: float = DEFAULT_CLOCK_NS):
        if clock_ns <= 0:
            raise ValueError("clock period must be positive")
        self.clock_ns = clock_ns

    @property
    def frequency_hz(self) -> float:
        return 1e9 / self.clock_ns

    def op(self, resource: str, bits: int = 32) -> OpInfo:
        """Characterization of a resource class at the given bit width.

        Piecewise width scaling calibrated so the legacy 32- and 64-bit
        characterization points are reproduced exactly; widths in between
        interpolate linearly, and proven widths below 32 bits shrink the
        area (linearly for adders/logic, quadratically for multipliers)
        without touching delay or pipeline latency.
        """
        try:
            base = _OPS[resource]
        except KeyError:
            raise KeyError(f"no characterization for resource {resource!r}") from None
        if bits == 32:
            return base
        area = _area_factor(resource, bits)
        delay = _delay_factor(bits)
        if area == 1.0 and delay == 1.0:
            return base
        return OpInfo(
            delay_ns=base.delay_ns * delay,
            cycles=base.cycles,
            area_um2=base.area_um2 * area,
            pipelined=base.pipelined,
        )

    def latency_cycles(self, resource: str, bits: int = 32) -> int:
        return self.op(resource, bits).cycles

    def delay_ns(self, resource: str, bits: int = 32) -> float:
        return self.op(resource, bits).delay_ns

    def area(self, resource: str, bits: int = 32) -> float:
        return self.op(resource, bits).area_um2

    def register_area(self, bits: int) -> float:
        return REGISTER_BIT_AREA_UM2 * bits

    def mux_area(self, bits: int, inputs: int = 2) -> float:
        """Area of an ``inputs``-way multiplexer of the given width."""
        if inputs < 2:
            return 0.0
        return MUX2_BIT_AREA_UM2 * bits * (inputs - 1)

    def fsm_area(self, states: int) -> float:
        return FSM_STATE_AREA_UM2 * max(1, states)

    def scratchpad_area(self, bytes_: int) -> float:
        return SPAD_BASE_AREA_UM2 + SPAD_BYTE_AREA_UM2 * max(0, bytes_)

    def dma_cycles(self, bytes_: int) -> int:
        """Cycles to stream ``bytes_`` through the DMA engine (one way)."""
        return max(1, -(-bytes_ // DMA_BYTES_PER_CYCLE))


#: Shared default library instance at the paper's 500 MHz target.
DEFAULT_TECHLIB = TechLibrary()
