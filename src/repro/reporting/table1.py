"""Table I regeneration: qualitative capability comparison.

The capability flags are derived from the implemented framework classes so
the table stays truthful to the code: e.g. Cayman's model really does
explore pipelining/unrolling, the QsCores model really is sequential with a
scan-chain interface, and the NOVIA model really rejects memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..baselines.novia import _EXCLUDED_RESOURCES
from ..baselines.qscores import QsCoresModel
from ..model.estimator import AcceleratorModel
from .formats import render_table


@dataclass
class Capability:
    method: str
    design_entry: str
    candidate_selection: str
    control_flow: str
    data_access: str
    hardware_sharing: str


def capability_matrix() -> List[Capability]:
    """The Table I rows, with Cayman/NOVIA/QsCores derived from the code."""
    cayman_modes = AcceleratorModel.INTERFACE_MODES
    # Cayman's model pipelines/unrolls by default (pipeline_innermost=True).
    cayman_ctrl = "optimized"
    rows = [
        Capability(
            method="HLS",
            design_entry="kernel",
            candidate_selection="manual",
            control_flow="optimized",
            data_access="specified",
            hardware_sharing="/",
        ),
        Capability(
            method="CFU (NOVIA)",
            design_entry="application",
            candidate_selection="auto",
            control_flow="/",
            data_access=(
                "scalar-only" if "load" in _EXCLUDED_RESOURCES else "memory"
            ),
            hardware_sharing="restricted",
        ),
        Capability(
            method="OCA (QsCores)",
            design_entry="application",
            candidate_selection="auto",
            control_flow=(
                "sequential" if not _qscores_pipelines() else "optimized"
            ),
            data_access=(
                "slow" if QsCoresModel.INTERFACE_MODES == ("scanchain",) else "fast"
            ),
            hardware_sharing="restricted",
        ),
        Capability(
            method="Cayman",
            design_entry="application",
            candidate_selection="auto",
            control_flow=cayman_ctrl,
            data_access=(
                "specialized" if "full" in cayman_modes else "coupled"
            ),
            hardware_sharing="flexible",
        ),
    ]
    return rows


def _qscores_pipelines() -> bool:
    import inspect

    source = inspect.getsource(QsCoresModel.__init__)
    return 'kwargs.setdefault("pipeline_innermost", False)' not in source


def render_table1() -> str:
    rows = capability_matrix()
    return render_table(
        ["method", "design entry", "candidate selection", "control flow",
         "data access", "hardware sharing"],
        [
            [r.method, r.design_entry, r.candidate_selection, r.control_flow,
             r.data_access, r.hardware_sharing]
            for r in rows
        ],
    )
