"""Merging bench (experiment id: merge): §IV-B's accelerator-merging claims.

* merging saves substantial area on merge-friendly apps (3mm: identical
  matmul datapaths; paper reports 74%/70%);
* apps with one hotspot barely merge (doitgen: paper reports 5%);
* reusable accelerators serve ~3 distinct program regions on average.
"""

import pytest

from repro.framework import Cayman
from repro.workloads import get_workload


def best_merged(name, budget=0.65):
    workload = get_workload(name)
    result = Cayman().run(workload.source, name=name)
    return result.best_under_budget(budget)


def test_merge_saves_on_3mm(benchmark):
    merged = benchmark.pedantic(best_merged, args=("3mm",), rounds=1, iterations=1)
    print(f"\n3mm: merge saving {merged.saving_pct:.1f}% "
          f"({merged.merge_steps} steps)")
    assert merged.merge_steps > 0
    assert merged.saving_pct > 10.0


def test_merge_contrast_3mm_vs_doitgen(benchmark):
    def run():
        return best_merged("3mm"), best_merged("doitgen")

    mm, doitgen = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n3mm saving: {mm.saving_pct:.1f}%  "
          f"doitgen saving: {doitgen.saving_pct:.1f}%")
    assert mm.saving_pct > doitgen.saving_pct


def test_reusable_accelerators_serve_multiple_regions(benchmark):
    merged = benchmark.pedantic(best_merged, args=("3mm",), rounds=1, iterations=1)
    reusable = [a for a in merged.accelerators if a.is_reusable]
    mean = merged.mean_regions_per_reusable
    print(f"\n3mm reusable accelerators: {len(reusable)}, "
          f"mean regions per reusable: {mean:.1f}")
    assert reusable
    assert mean >= 2.0


def test_merging_preserves_performance(benchmark):
    def run():
        workload = get_workload("3mm")
        merged_on = Cayman(merging=True).run(workload.source, name="3mm")
        merged_off = Cayman(merging=False).run(workload.source, name="3mm")
        return merged_on, merged_off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    # Merging only reduces area; the time saved per solution is unchanged,
    # so at a generous budget the speedups agree.
    assert on.speedup_under_budget(2.0) == pytest.approx(
        off.speedup_under_budget(2.0), rel=1e-6
    )
    # At a tight budget merging can only help (smaller areas fit sooner).
    assert on.speedup_under_budget(0.1) >= off.speedup_under_budget(0.1) - 1e-9
