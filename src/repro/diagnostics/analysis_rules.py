"""Analysis-layer diagnostic rules (codes ``AN0xx``).

Consistency checks over the wPST, the profile, and the memory-access
analyses.  These rules guard the *inputs* of candidate selection: a region
offered with zero profile weight wastes DP work; an access classified as a
stream without an analyzable address recurrence would synthesize a broken
AGU; a loop whose footprints are unanalyzable but that reports no carried
dependence would be pipelined/unrolled unsoundly (paper §III-B/III-C).
"""

from __future__ import annotations

from typing import Iterator

from .core import Diagnostic, Location, Severity
from .registry import rule


@rule(
    "AN001",
    "cold-region-candidate",
    layer="analysis",
    severity=Severity.WARNING,
    description=(
        "wPST region vertex was never executed in the profiling run; it "
        "remains a selection candidate with zero profit."
    ),
    paper_ref="§III-D (heuristic pruning, Algorithm 1 line 2)",
    requires=("profile", "wpst"),
)
def check_cold_regions(ctx) -> Iterator[Diagnostic]:
    for node in ctx.wpst.region_vertices():
        region = node.region
        if region is None:
            continue
        if ctx.profile.region_count(region) == 0:
            yield Diagnostic(
                code="AN001",
                severity=Severity.WARNING,
                location=Location(
                    function=region.function.name,
                    block=region.entry.name,
                    detail=f"region {region.name}",
                ),
                message=(
                    f"region {region.name} was never entered during "
                    "profiling; selection cannot profit from it"
                ),
                suggestion=(
                    "extend the profiling input to cover the region, or "
                    "rely on the prune heuristic to skip it"
                ),
            )


@rule(
    "AN002",
    "stream-misclassification",
    layer="analysis",
    severity=Severity.ERROR,
    description=(
        "Access classified as a stream although its address is not an "
        "affine recurrence nest — a decoupled AGU cannot generate it.  "
        "Loop-invariant symbolic steps are affine (an AGU strides by a "
        "runtime-loaded register); only genuinely non-affine offsets "
        "(data-dependent indices, non-invariant steps) are flagged."
    ),
    paper_ref="§III-C (decoupled interfaces are legal only for streams)",
)
def check_stream_classification(ctx) -> Iterator[Diagnostic]:
    for func in ctx.module.defined_functions():
        for access in ctx.access(func).accesses():
            if access.is_stream and access.affine_addrec_levels() is None:
                inst = access.inst
                yield Diagnostic(
                    code="AN002",
                    severity=Severity.ERROR,
                    location=Location(
                        function=func.name,
                        block=inst.parent.name if inst.parent else None,
                        instruction=inst.ref,
                    ),
                    message=(
                        f"{inst.opcode} is classified as a stream but its "
                        "offset is not an affine address recurrence"
                    ),
                    suggestion=(
                        "the access-pattern analysis is inconsistent; "
                        "treat the access as coupled"
                    ),
                )


@rule(
    "AN003",
    "memdep-footprint-inconsistency",
    layer="analysis",
    severity=Severity.ERROR,
    description=(
        "Loop contains a store whose per-iteration stride is unanalyzable "
        "by SCEV, yet memory-dependence analysis reports no loop-carried "
        "dependence — the no-dependence verdict cannot be trusted."
    ),
    paper_ref="§III-B (unanalyzable footprints must be conservative)",
)
def check_memdep_footprints(ctx) -> Iterator[Diagnostic]:
    for func in ctx.module.defined_functions():
        access_analysis = ctx.access(func)
        memdep = ctx.memdep(func)
        for loop in ctx.loop_info(func).loops:
            unanalyzable = [
                access
                for access in access_analysis.accesses_in(loop.blocks)
                if access.is_store and access.stride_in(loop) is None
            ]
            if not unanalyzable:
                continue
            if memdep.has_loop_carried_dependence(loop):
                continue
            for access in unanalyzable:
                inst = access.inst
                yield Diagnostic(
                    code="AN003",
                    severity=Severity.ERROR,
                    location=Location(
                        function=func.name,
                        block=inst.parent.name if inst.parent else None,
                        instruction=inst.ref,
                        detail=f"loop {loop.name}",
                    ),
                    message=(
                        f"store with unanalyzable stride in loop "
                        f"{loop.name}, yet the loop reports no carried "
                        "dependence"
                    ),
                    suggestion=(
                        "the dependence analysis is inconsistent with the "
                        "SCEV footprints; treat the loop as dependent"
                    ),
                )


@rule(
    "AN004",
    "footprint-bound-looser-than-proven",
    layer="analysis",
    severity=Severity.INFO,
    description=(
        "SCEV footprint estimate for a loop access is more than twice the "
        "interval-proven byte window of the access: scratchpad sizing "
        "would over-allocate at least 2x.  Typical cause: a guard inside "
        "the loop (which branch refinement sees but SCEV ignores) "
        "restricts the accessed range.  (Intervals only give upper "
        "bounds, so only the looser direction is detectable; small slack "
        "from conservative trip bounds is not reported.)"
    ),
    paper_ref="§III-C (scratchpad capacity planning uses footprints)",
)
def check_footprint_bounds(ctx) -> Iterator[Diagnostic]:
    for func in ctx.module.defined_functions():
        analysis = ctx.intervals.for_function(func)
        access_analysis = ctx.access(func)
        for loop in ctx.loop_info(func).loops:
            trip = analysis.static_trip_bound(loop)
            if trip is None:
                continue
            for access in access_analysis.accesses_in(loop.blocks):
                footprint = access.footprint_in(loop, trip)
                if footprint is None:
                    continue
                window = ctx.bounds.windows.get(access.inst)
                if window is None:
                    continue
                off = window.offset
                if off.lo is None or off.hi is None:
                    continue
                window_bytes = off.hi + window.access_size - off.lo
                footprint_bytes = footprint * access.element_size
                if footprint_bytes > 2 * window_bytes:
                    inst = access.inst
                    yield Diagnostic(
                        code="AN004",
                        severity=Severity.INFO,
                        location=Location(
                            function=func.name,
                            block=inst.parent.name if inst.parent else None,
                            instruction=inst.ref,
                            detail=f"loop {loop.name}",
                        ),
                        message=(
                            f"SCEV footprint of {footprint_bytes} B in loop "
                            f"{loop.name} exceeds the interval-proven "
                            f"window of {window_bytes} B"
                        ),
                        suggestion=(
                            "size the scratchpad from the interval-proven "
                            "window instead of the SCEV footprint"
                        ),
                    )


@rule(
    "AN006",
    "pipeline-ii-bound-by-unproven-dependence",
    layer="analysis",
    severity=Severity.INFO,
    description=(
        "An innermost (pipelining-candidate) loop carries a flow "
        "dependence whose distance the affine dependence-vector analysis "
        "could not prove: the recurrence must be scheduled at distance 1, "
        "so the pipeline II is bound by the full recurrence latency.  "
        "Proving the distance (constant subscripts, interprocedurally "
        "resolvable parameters) would divide the recurrence II by it."
    ),
    paper_ref="§III-C (recurrence II = ceil(latency / distance))",
    requires=("profile",),
)
def check_unproven_recurrence_distance(ctx) -> Iterator[Diagnostic]:
    for func in ctx.module.defined_functions():
        memdep = ctx.memdep(func)
        for loop in ctx.loop_info(func).loops:
            if not loop.is_innermost:
                continue
            for dep in memdep.recurrence_deps(loop):
                if dep.distance is not None:
                    continue
                inst = dep.sink.inst
                yield Diagnostic(
                    code="AN006",
                    severity=Severity.INFO,
                    location=Location(
                        function=func.name,
                        block=inst.parent.name if inst.parent else None,
                        instruction=inst.ref,
                        detail=f"loop {loop.name}",
                    ),
                    message=(
                        f"pipeline II of loop {loop.name} is bound by a "
                        "carried flow dependence of unproven distance "
                        "(scheduled at distance 1)"
                    ),
                    suggestion=(
                        "make the subscripts affine in the loop counters "
                        "(or the strides interprocedurally constant) so "
                        "the dependence-vector analysis can prove the "
                        "minimal distance"
                    ),
                )


#: AN005 reports a function when an integer datapath op's type width is at
#: least this factor times its proven width (a narrowing opportunity the
#: estimator exploits automatically; the report makes it visible).
NARROWING_FACTOR = 2


@rule(
    "AN005",
    "datapath-wider-than-proven",
    layer="analysis",
    severity=Severity.INFO,
    description=(
        "Function contains integer datapath operations whose type width "
        "is at least NARROWING_FACTOR (2x) their bitwidth-proven width: "
        "the known-bits ∧ demanded-bits analysis shows most of the "
        "datapath is provably idle.  Reported per function as a "
        "narrowing-opportunity aggregate; the area estimator and FU "
        "merger already bill the proven widths."
    ),
    paper_ref="§III-F (area model; width-aware FU characterization)",
    requires=("profile",),
)
def check_datapath_width(ctx) -> Iterator[Diagnostic]:
    from ..ir import resource_class

    for func in ctx.module.defined_functions():
        analysis = ctx.bitwidth.for_function(func)
        wide = total = 0
        type_bits = proven_bits = 0
        for inst in func.instructions():
            if not inst.type.is_int:
                continue
            if resource_class(inst) in ("control", "alloca", "call"):
                continue
            total += 1
            width = analysis.proven_width(inst)
            type_bits += inst.type.bits
            proven_bits += width
            if inst.type.bits >= NARROWING_FACTOR * width:
                wide += 1
        if wide == 0:
            continue
        yield Diagnostic(
            code="AN005",
            severity=Severity.INFO,
            location=Location(function=func.name),
            message=(
                f"{wide}/{total} integer datapath ops are at least "
                f"{NARROWING_FACTOR}x wider than proven "
                f"({type_bits} type bits vs {proven_bits} proven bits)"
            ),
            suggestion=(
                "no action needed — the estimator narrows automatically; "
                "use `repro bitwidth` for the per-function area delta"
            ),
        )
