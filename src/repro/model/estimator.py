"""Cayman's accelerator model: configuration generation plus fast
performance/area estimation (paper §III-C).

For a selected kernel (a wPST region) the model

1. applies loop unrolling according to the configuration (DFG replication,
   legal only without loop-carried dependencies);
2. synthesizes only the pipelined loop regions ``P`` and the sequential
   basic blocks ``B`` via the HLS substrate;
3. estimates total cycles bottom-up from scheduled latencies × profiled
   execution counts, and area as the sum of synthesized units plus
   interface, control, and fixed accelerator overheads.

The per-access interface heuristic: *scratchpad* when the access count is
β× larger than the footprint (caching pays off), *decoupled* for stream
accesses inside pipelined loops (reaches the ideal II), *coupled* otherwise
(cheapest).  Memory partitioning matches scratchpads to unrolled loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.access_patterns import AccessInfo, AccessPatternAnalysis
from ..analysis.loops import Loop, LoopInfo
from ..analysis.memdep import MemoryDependenceAnalysis
from ..analysis.regions import Region
from ..analysis.wpst import WPSTNode
from ..ir import Call, Function, Instruction, Load, Module, Store
from ..hls.datapath import (
    AreaBreakdown,
    pipelined_datapath_area,
    sequential_datapath_area,
)
from ..hls.dfg import DFG, DFGNode
from ..hls.pipeline import pipeline_loop
from ..hls.scheduling import schedule_dfg
from ..hls.techlib import (
    ACCELERATOR_BASE_AREA_UM2,
    OFFLOAD_OVERHEAD_CYCLES,
    REGION_CTRL_AREA_UM2,
    DEFAULT_TECHLIB,
    SPAD_LATENCY,
    TechLibrary,
)
from ..hls.report import SynthesisReport
from ..hls.transform import unroll_legal
from ..interp.profiler import RegionProfile
from ..telemetry import current as current_telemetry
from .config import AcceleratorConfig, AcceleratorEstimate, LoopPlan
from .interfaces import InterfaceAssignment, InterfaceKind, InterfacePlan


#: Version tag of the performance/area estimation logic.  Bump whenever the
#: estimates produced for an unchanged module can change (new interface
#: heuristics, cost-table updates, scheduling changes, ...): it is part of the
#: bench harness's persistent cache key, so bumping it invalidates every
#: cached evaluation record.
ESTIMATOR_VERSION = "6"


class FunctionContext:
    """Cached per-function analyses shared by all candidate evaluations.

    ``points_to`` and ``intervals`` are the module-level dataflow results
    (built once by the model): points-to sharpens ``may_alias`` beyond the
    same-base test, and interval-proven access windows clamp scratchpad
    footprint estimates.  ``bitwidth`` supplies proven datapath widths that
    narrow every DFG node below its type width.
    """

    def __init__(self, func: Function, points_to=None, intervals=None,
                 bitwidth=None, vector_distances: bool = True):
        self.func = func
        self.access = AccessPatternAnalysis(func)
        self.loop_info: LoopInfo = self.access.loop_info
        self.points_to = points_to
        self.intervals = (
            intervals.for_function(func) if intervals is not None else None
        )
        #: ``vector_distances=False`` falls back to the 1-D windowed distance
        #: test (pre-dependence-vector behavior) — the "before" variant of
        #: the bench ``pipeline_ii`` comparison.
        self.memdep = MemoryDependenceAnalysis(
            self.access, points_to=points_to, intervals=self.intervals,
            vector_distances=vector_distances,
        )
        #: Instruction → proven width map for DFG construction (None keeps
        #: type widths, e.g. when narrowing is disabled for A/B comparison).
        self.widths = (
            bitwidth.width_map(func) if bitwidth is not None else None
        )
        from ..analysis.banking import BankingAnalysis

        #: Scratchpad bank-conflict prover shared by every candidate config
        #: (verdicts are cached per group/lane structure).
        self.banking = BankingAnalysis(self.loop_info, intervals=self.intervals)
        from ..analysis.reuse import ReuseAnalysis

        #: Inter-iteration data-reuse prover (shift-register buffers);
        #: verdicts are cached per (base, loop, member) structure.
        self.reuse = ReuseAnalysis(
            self.loop_info, intervals=self.intervals, memdep=self.memdep
        )
        from ..analysis.cfg import reverse_postorder

        self.rpo_index = {b: i for i, b in enumerate(reverse_postorder(func))}

    def may_alias(self, first: Instruction, second: Instruction) -> bool:
        a = self.access.info(first)
        b = self.access.info(second)
        if a.base is None or b.base is None:
            return True
        if a.base is b.base:
            return True
        if self.points_to is not None:
            return self.points_to.may_alias(a.base, b.base)
        return True

    def static_trip_bound(self, loop: Loop) -> Optional[int]:
        """Interval-proven upper bound on the loop trip count, if any."""
        if self.intervals is None:
            return None
        return self.intervals.static_trip_bound(loop)

    def ordered_blocks(self, blocks) -> List:
        return sorted(blocks, key=lambda b: self.rpo_index.get(b, 1 << 30))


def loop_recurrences(
    loop: Loop, dfg: DFG, ctx: FunctionContext, unroll_factor: int = 1
) -> List[Tuple[DFGNode, DFGNode, int]]:
    """Recurrence triples ``(load_node, store_node, distance)`` of ``loop``.

    Memory recurrences carry the *proven minimal* dependence distance
    (``Dependence.effective_distance``, 1 when unproven): a recurrence of
    latency L at distance d only forces II ≥ ceil(L / d).  When the loop is
    unrolled, distances are re-expressed in groups of ``unroll_factor``
    iterations.  SSA recurrences through header phis (promoted accumulators)
    are always distance 1.
    """
    node_of: Dict[Instruction, DFGNode] = {}
    for node in dfg.nodes:
        node_of.setdefault(node.inst, node)
    result: List[Tuple[DFGNode, DFGNode, int]] = []
    for dep in ctx.memdep.recurrence_deps(loop):
        store_node = node_of.get(dep.source.inst)
        load_node = node_of.get(dep.sink.inst)
        if store_node is not None and load_node is not None:
            distance = max(1, dep.effective_distance // max(1, unroll_factor))
            result.append((load_node, store_node, distance))
    # The path from the phi's first consumer to the back-edge definition
    # must fit within one II (distance 1).
    for phi in loop.header.phis():
        for value, pred in phi.incoming():
            if pred not in loop.blocks:
                continue
            back_node = node_of.get(value) if isinstance(value, Instruction) else None
            if back_node is None:
                continue
            for user in phi.users:
                start = node_of.get(user)
                if start is not None:
                    result.append((start, back_node, 1))
    return result


def unrolled_loops_of(
    inst: Instruction, loop_plans: Dict[Loop, "LoopPlan"], loop_info: LoopInfo
) -> Tuple:
    """The ``(loop, factor)`` pairs that replicate ``inst`` into parallel
    lanes under a configuration's loop plans (innermost-first).  Shared by
    the estimator's banking pass and the config-layer lint rules so both
    reason about the same lane structure."""
    spec = []
    loop = (
        loop_info.innermost_loop(inst.parent)
        if inst.parent is not None else None
    )
    while loop is not None:
        plan = loop_plans.get(loop)
        if plan is not None and plan.unroll > 1:
            spec.append((loop, plan.unroll))
        loop = loop.parent
    return tuple(spec)


class AcceleratorModel:
    """Generates and evaluates accelerator configurations for wPST regions."""

    #: Interface strategy variants explored per unroll factor.
    INTERFACE_MODES = ("full", "no_spad", "coupled_only")

    def __init__(
        self,
        module: Module,
        profile: RegionProfile,
        techlib: TechLibrary = DEFAULT_TECHLIB,
        beta: float = 4.0,
        unroll_factors: Sequence[int] = (1, 2, 4, 8),
        max_spad_bytes: int = 1 << 16,
        coupled_only: bool = False,
        pipeline_innermost: bool = True,
        legality_prefilter: bool = True,
        narrow_widths: bool = True,
        prove_banking: bool = True,
        prove_reuse: bool = True,
    ):
        self.module = module
        self.profile = profile
        self.techlib = techlib
        self.beta = beta
        self.unroll_factors = tuple(unroll_factors)
        self.max_spad_bytes = max_spad_bytes
        self.coupled_only = coupled_only
        self.pipeline_innermost = pipeline_innermost
        self.legality_prefilter = legality_prefilter
        #: ``False`` prices every DFG node at its type width (pre-bitwidth
        #: behavior) — used for the bench ``area_narrowing`` comparison.
        self.narrow_widths = narrow_widths
        #: ``False`` keeps the pre-verdict optimism (claimed partitions are
        #: trusted as parallel) — the "before" variant of the bench
        #: ``spad_banking`` comparison.
        self.prove_banking = prove_banking
        #: ``False`` keeps every scratchpad load on a port (pre-reuse
        #: behavior) — the "before" variant of the bench ``reuse_buffers``
        #: comparison.  Proven pairs otherwise become register chains.
        self.prove_reuse = prove_reuse
        #: Configurations rejected by the legality pre-filter, as
        #: ``(config, diagnostics)`` pairs — inspectable after a run.
        self.rejected_configs: List[Tuple[AcceleratorConfig, list]] = []
        self._contexts: Dict[Function, FunctionContext] = {}
        self._estimate_cache: Dict[Tuple, List[AcceleratorEstimate]] = {}
        # Module-level dataflow results shared by every function context:
        # points-to backs may_alias, interval windows clamp footprints,
        # bitwidth narrows datapath operators to their proven widths.
        from ..dataflow import (
            BoundsAnalysis,
            ModuleBitwidthAnalysis,
            ModuleIntervalAnalysis,
            PointsToAnalysis,
        )

        self._intervals = ModuleIntervalAnalysis(module)
        self._points_to = PointsToAnalysis(module)
        self._bounds = BoundsAnalysis(module, self._intervals)
        self._bitwidth = ModuleBitwidthAnalysis(module, self._intervals)

    # Context management ------------------------------------------------------

    def context(self, func: Function) -> FunctionContext:
        if func not in self._contexts:
            self._contexts[func] = FunctionContext(
                func,
                points_to=self._points_to,
                intervals=self._intervals,
                bitwidth=self._bitwidth if self.narrow_widths else None,
            )
        return self._contexts[func]

    # Public API ---------------------------------------------------------------

    def candidates(self, node: WPSTNode) -> List[AcceleratorEstimate]:
        """All profitable accelerator configurations for one region vertex."""
        region = node.region
        if region is None:
            return []
        key = (id(region),)
        if key in self._estimate_cache:
            return self._estimate_cache[key]
        result = self._candidates_uncached(region)
        self._estimate_cache[key] = result
        return result

    def _candidates_uncached(self, region: Region) -> List[AcceleratorEstimate]:
        if self._region_has_call(region):
            return []
        invocations = self.profile.region_count(region)
        if invocations <= 0:
            return []
        ctx = self.context(region.function)
        estimates: List[AcceleratorEstimate] = []
        seen: set = set()
        env = self._rule_env(ctx) if self.legality_prefilter else None
        tele = current_telemetry()

        for config in self._configs_for_region(region, ctx):
            tele.count("model.configs_generated")
            if env is not None:
                from ..diagnostics.config_rules import config_errors

                errors = config_errors(config, env)
                if errors:
                    self.rejected_configs.append((config, errors))
                    tele.count("model.configs_prefiltered")
                    continue
            estimate = self.estimate(config, ctx)
            if estimate is None or not estimate.is_profitable:
                tele.count("model.configs_unprofitable")
                continue
            signature = (round(estimate.cycles), round(estimate.area))
            if signature in seen:
                tele.count("model.configs_deduped")
                continue
            seen.add(signature)
            estimates.append(estimate)
        tele.count("model.candidates", len(estimates))
        return estimates

    # Configuration generation ----------------------------------------------------

    def _rule_env(self, ctx: FunctionContext):
        """The :class:`ConfigRuleEnv` the legality pre-filter checks against."""
        from ..diagnostics.config_rules import ConfigRuleEnv

        return ConfigRuleEnv(
            memdep=ctx.memdep,
            loop_info=ctx.loop_info,
            profile=self.profile,
            max_spad_bytes=self.max_spad_bytes,
            access=ctx.access,
            # Without banking proofs the pre-filter must not reject the
            # historically-optimistic configs it is meant to reproduce.
            banking=ctx.banking if self.prove_banking else None,
            reuse=ctx.reuse if self.prove_reuse else None,
        )

    def _configs_for_region(self, region: Region, ctx: FunctionContext):
        """Generate every candidate configuration the search explores."""
        modes = ("coupled_only",) if self.coupled_only else self.INTERFACE_MODES
        for factor in self.unroll_factors:
            for mode in modes:
                yield self.build_config(region, ctx, factor, mode)

        # Per-nest refinement: when the kernel contains several independent
        # loop nests, also try unrolling just one of them — cheaper points
        # on the performance-area front than the uniform factors above.
        top_nests = self._top_level_nests(region, ctx)
        max_factor = max(self.unroll_factors)
        if len(top_nests) >= 2 and max_factor > 1 and not self.coupled_only:
            for nest in top_nests[:4]:
                yield self.build_config(
                    region, ctx, max_factor, "full", only_nest=nest
                )

    def generate_configs(self, region: Region):
        """Public configuration generator (used by the lint config layer)."""
        yield from self._configs_for_region(region, self.context(region.function))

    def is_candidate_region(self, region: Region) -> bool:
        """Whether the model would consider ``region`` at all (regions
        containing calls are never offloaded, paper §III-B)."""
        return not self._region_has_call(region)

    def build_config(
        self,
        region: Region,
        ctx: FunctionContext,
        factor: int,
        mode: str,
        only_nest: Optional[Loop] = None,
    ) -> AcceleratorConfig:
        """One configuration: unroll/pipeline plan + interface assignment.

        ``only_nest`` restricts the unroll factor to the nest rooted at the
        given top-level loop (per-nest exploration); other nests keep 1.
        """
        loops = self._loops_in_region(region, ctx)
        loop_set = set(loops)
        loop_plans: Dict[Loop, LoopPlan] = {}
        for loop in loops:
            innermost = loop.is_innermost and self.pipeline_innermost
            loop_plans[loop] = LoopPlan(loop=loop, unroll=1, pipelined=innermost)
        if factor > 1 and self.pipeline_innermost:
            # The unroll lands on the nearest unroll-legal loop of each nest,
            # walking outward from the innermost loop (paper §III-C: "try
            # unrolling loops without loop-carried dependencies").  Unrolling
            # an outer loop replicates the inner pipeline into parallel lanes.
            for loop in loops:
                if not loop.is_innermost:
                    continue
                if only_nest is not None and not only_nest.contains_loop(loop):
                    continue
                candidate: Optional[Loop] = loop
                while candidate is not None and candidate in loop_set:
                    # Factor-aware legality: a carried dependence with a
                    # proven distance ≥ factor still admits this unroll.
                    if unroll_legal(candidate, ctx.memdep, factor):
                        if self.profile.trip_count(candidate) >= factor:
                            loop_plans[candidate].unroll = factor
                        break
                    candidate = candidate.parent

        plan = InterfacePlan()
        for access in self._accesses_in_region(region, ctx):
            plan.assign(
                self._assign_interface(access, region, ctx, loop_plans, mode)
            )
        if self.prove_reuse:
            # Runs before banking: buffered consumers leave their group, so
            # the banking verdict only has to serve the remaining port
            # accesses (fewer banks can then suffice).
            self._apply_reuse(plan, ctx, loop_plans)
        if self.prove_banking:
            self._apply_banking(plan, ctx, loop_plans)
        label = f"u{factor}/{mode}"
        if only_nest is not None:
            label += f"@{only_nest.name}"
        return AcceleratorConfig(
            region=region,
            loop_plans=loop_plans,
            plan=plan,
            label=label,
        )

    def _apply_banking(
        self,
        plan: InterfacePlan,
        ctx: FunctionContext,
        loop_plans: Dict[Loop, LoopPlan],
    ) -> None:
        """Back every scratchpad group's partitioning with a proven verdict.

        Proven groups get the cheapest conflict-free scheme's bank count
        (which can be *smaller* than the claimed lane count, e.g. broadcast
        loads prove with one bank).  Unproven groups keep the claimed
        partitioning for area — the hardware would still build the banks —
        but ``banking_proven=False`` makes ``port_counts`` expose a single
        dual-ported bank, so the scheduler serializes the group's accesses.
        """
        from ..analysis.banking import GroupAccess

        groups: Dict[object, List[InterfaceAssignment]] = {}
        for assignment in plan.assignments.values():
            if assignment.kind is InterfaceKind.SCRATCHPAD:
                groups.setdefault(assignment.spad_group, []).append(assignment)
        tele = current_telemetry()
        for group, assignments in groups.items():
            members = [
                GroupAccess(
                    ctx.access.info(a.inst),
                    unrolled_loops_of(a.inst, loop_plans, ctx.loop_info),
                )
                for a in assignments
                # Reuse-buffered consumers never touch the banks in steady
                # state; the scheme only has to serve the port accesses.
                if not a.reuse_buffered
            ]
            footprint = max(a.spad_bytes for a in assignments)
            verdict = ctx.banking.verdict(
                group, members, footprint_bytes=footprint or None
            )
            claimed = max(a.partitions for a in assignments)
            for assignment in assignments:
                assignment.banking = verdict.best
                assignment.banking_proven = verdict.proven
                assignment.banking_verdict = verdict
                if verdict.best is not None and not assignment.reuse_buffered:
                    assignment.partitions = verdict.best.banks
            if tele.enabled:
                tele.count("model.banking_groups")
                if not verdict.proven and claimed > 1:
                    tele.count("model.banking_serialized")
                elif verdict.proven and verdict.best.banks < claimed:
                    tele.count("model.banking_deprovisioned")

    def _apply_reuse(
        self,
        plan: InterfacePlan,
        ctx: FunctionContext,
        loop_plans: Dict[Loop, LoopPlan],
    ) -> None:
        """Convert proven reuse pairs into shift-register buffers.

        For every scratchpad group inside a pipelined innermost loop the
        reuse analysis decides which loads provably re-read an element a
        recent iteration touched.  Each exploitable consumer (proven trip
        bound beyond the distance, chain within the depth budget) is fed
        from a register tap instead of a port: its timing loses the port,
        its partition claim drops to one, and the chain's registers are
        priced by ``InterfacePlan.reuse_register_area``.  Only *proven*
        pairs qualify — unknown candidates are never buffered.
        """
        from ..analysis.reuse import select_buffers

        groups: Dict[object, List[InterfaceAssignment]] = {}
        for assignment in plan.assignments.values():
            if assignment.kind is InterfaceKind.SCRATCHPAD:
                groups.setdefault(assignment.spad_group, []).append(assignment)
        tele = current_telemetry()
        for group, assignments in groups.items():
            by_loop: Dict[Loop, List[InterfaceAssignment]] = {}
            for assignment in assignments:
                loop = ctx.loop_info.innermost_loop(assignment.inst.parent)
                loop_plan = loop_plans.get(loop) if loop is not None else None
                if loop_plan is None or not loop_plan.pipelined:
                    continue
                by_loop.setdefault(loop, []).append(assignment)
            for loop, members in by_loop.items():
                if any(
                    isinstance(inst, Call)
                    for block in loop.blocks
                    for inst in block.instructions
                ):
                    continue  # callee stores could clobber the buffer
                stores = [
                    info for info in ctx.access.accesses_in(loop.blocks)
                    if info.is_store
                ]
                verdict = ctx.reuse.verdict(
                    group, loop,
                    [ctx.access.info(a.inst) for a in members],
                    stores=stores,
                )
                if not verdict.pairs:
                    continue
                lanes = 1
                for _, unroll in unrolled_loops_of(
                    members[0].inst, loop_plans, ctx.loop_info
                ):
                    lanes *= max(1, unroll)
                chosen, over_budget = select_buffers(verdict, lanes=lanes)
                by_inst = {a.inst: a for a in members}
                for inst, pair in chosen.items():
                    assignment = by_inst.get(inst)
                    if assignment is None:
                        continue
                    assignment.reuse_source = pair.producer.inst
                    assignment.reuse_distance = pair.distance
                    assignment.reuse_depth = pair.depth(lanes)
                    assignment.reuse_bits = 8 * pair.consumer.element_size
                    assignment.partitions = 1
                    if tele.enabled:
                        tele.count("model.reuse_buffered")
                if tele.enabled:
                    tele.count("model.reuse_groups")
                    tele.count("model.reuse_over_budget", len(over_budget))

    def _assign_interface(
        self,
        access: AccessInfo,
        region: Region,
        ctx: FunctionContext,
        loop_plans: Dict[Loop, LoopPlan],
        mode: str,
    ) -> InterfaceAssignment:
        inst = access.inst
        if mode == "coupled_only":
            return InterfaceAssignment(inst, InterfaceKind.COUPLED)
        if mode == "scanchain":
            return InterfaceAssignment(inst, InterfaceKind.SCANCHAIN)

        enclosing = ctx.loop_info.innermost_loop(inst.parent)
        plan_for_loop = loop_plans.get(enclosing) if enclosing is not None else None
        in_pipelined = plan_for_loop is not None and plan_for_loop.pipelined

        if mode == "full":
            footprint = self._spad_footprint_bytes(access, region, ctx)
            if footprint is not None and 0 < footprint <= self.max_spad_bytes:
                count = self._access_count_per_invocation(access, region)
                elements = max(1, footprint // max(1, access.element_size))
                if count >= self.beta * elements:
                    partitions = 1
                    if plan_for_loop is not None:
                        partitions = plan_for_loop.unroll * self._lane_factor(
                            plan_for_loop.loop, loop_plans
                        )
                    return InterfaceAssignment(
                        inst,
                        InterfaceKind.SCRATCHPAD,
                        spad_group=access.base,
                        spad_bytes=footprint,
                        partitions=max(1, partitions),
                    )
        if in_pipelined and access.is_stream:
            return InterfaceAssignment(inst, InterfaceKind.DECOUPLED)
        return InterfaceAssignment(inst, InterfaceKind.COUPLED)

    def _spad_footprint_bytes(
        self, access: AccessInfo, region: Region, ctx: FunctionContext
    ) -> Optional[int]:
        """Byte span the access touches during one kernel invocation.

        The SCEV recurrence estimate (profiled trip counts, statically
        clamped) is tightened by the interval-proven offset window of the
        access; non-affine accesses fall back to the window alone, which
        makes them scratchpad candidates the SCEV model alone cannot size.
        """
        window_bytes = self._window_bytes(access)
        levels = access.addrec_levels()
        if levels is None:
            return window_bytes
        span = access.element_size
        for loop, step in levels:
            if loop.blocks <= region.blocks:
                trip = max(1, round(self.profile.trip_count(loop)))
                proven = ctx.static_trip_bound(loop)
                if proven is not None:
                    trip = min(trip, proven)
                span += abs(step) * (trip - 1)
        if window_bytes is not None:
            span = min(span, window_bytes)
        return span

    def _window_bytes(self, access: AccessInfo) -> Optional[int]:
        """Size of the interval-proven byte window of the access."""
        window = self._bounds.windows.get(access.inst)
        if window is None:
            return None
        off = window.offset
        if off.lo is None or off.hi is None:
            return None
        return off.hi + window.access_size - off.lo

    def _access_count_per_invocation(
        self, access: AccessInfo, region: Region
    ) -> float:
        invocations = max(1, self.profile.region_count(region))
        return self.profile.block_count(access.inst.parent) / invocations

    # Estimation -----------------------------------------------------------------

    def estimate(
        self, config: AcceleratorConfig, ctx: FunctionContext
    ) -> Optional[AcceleratorEstimate]:
        region = config.region
        profile = self.profile
        techlib = self.techlib
        plan = config.plan
        invocations = profile.region_count(region)
        timing = plan.access_timing
        ports = plan.port_counts()

        cycles = 0.0
        area = AreaBreakdown()
        seq_blocks = 0
        pipelined_regions = 0
        pipelined_blocks: set = set()
        units: List[Tuple[str, DFG]] = []
        reports: List[SynthesisReport] = []

        # 1. Pipelined loop regions.
        for loop_plan in config.loop_plans.values():
            if not loop_plan.pipelined:
                continue
            loop = loop_plan.loop
            blocks = ctx.ordered_blocks(loop.blocks)
            dfg = DFG.from_blocks(
                blocks, may_alias=ctx.may_alias, widths=ctx.widths
            )
            if not dfg.nodes:
                continue
            # Unrolled outer loops replicate this inner pipeline into lanes.
            replication = loop_plan.unroll * self._lane_factor(
                loop, config.loop_plans
            )
            unrolled = dfg.replicate(replication)
            recurrences = self._recurrences(loop, unrolled, ctx, loop_plan.unroll)
            result = pipeline_loop(unrolled, techlib, timing, ports, recurrences)
            entries = profile.loop_entries(loop)
            iterations = profile.loop_iterations(loop) / replication
            cycles += entries * result.depth
            cycles += max(0.0, iterations - entries) * result.ii
            # Reuse buffers need a warm-up prologue: the first `distance`
            # elements of each chain are pre-filled through the scratchpad
            # port before the steady-state (port-free) pipeline starts.
            warm = 0
            for block in loop.blocks:
                for inst in block.instructions:
                    a = plan.assignments.get(inst)
                    if a is not None and a.reuse_buffered:
                        warm = max(warm, a.reuse_distance)
            if warm:
                cycles += entries * warm * SPAD_LATENCY
            area = area + pipelined_datapath_area(
                unrolled, result.ii, result.depth, techlib, result.schedule
            )
            pipelined_regions += 1
            pipelined_blocks.update(loop.blocks)
            units.append((f"pipe:{loop.name}", unrolled))
            reports.append(SynthesisReport(
                name=f"pipe:{loop.name}",
                kind="pipelined",
                latency_cycles=result.latency(
                    max(1.0, iterations / max(1, entries))
                ),
                ii=result.ii,
                depth=result.depth,
                area=pipelined_datapath_area(
                    unrolled, result.ii, result.depth, techlib, result.schedule
                ),
                interface_counts=plan.counts(),
            ))

        # 2. Sequential basic blocks (everything not swallowed by a pipeline).
        for block in ctx.ordered_blocks(region.blocks):
            if block in pipelined_blocks:
                continue
            count = profile.block_count(block)
            dfg = DFG.from_blocks(
                [block], may_alias=ctx.may_alias, widths=ctx.widths
            )
            if not dfg.nodes:
                cycles += count  # control-only block: one FSM state
                continue
            schedule = schedule_dfg(dfg, techlib, timing, ports)
            cycles += count * schedule.length
            area = area + sequential_datapath_area(dfg, schedule, techlib)
            seq_blocks += 1
            units.append((f"bb:{block.name}", dfg))
            reports.append(SynthesisReport(
                name=f"bb:{block.name}",
                kind="sequential",
                latency_cycles=schedule.length,
                ii=None,
                depth=None,
                area=sequential_datapath_area(dfg, schedule, techlib),
            ))

        if seq_blocks == 0 and pipelined_regions == 0:
            return None

        # 3. Outer-region sequencing control, interfaces, fixed overheads.
        outer_loops = sum(
            1 for p in config.loop_plans.values() if not p.pipelined
        )
        area.control += REGION_CTRL_AREA_UM2 * (outer_loops + 1)
        area.control += ACCELERATOR_BASE_AREA_UM2
        area.interfaces += plan.interface_area(techlib)

        cycles += plan.dma_cycles_per_invocation(techlib) * invocations
        cycles += OFFLOAD_OVERHEAD_CYCLES * invocations

        kernel_seconds = profile.region_seconds(region)
        accel_seconds = cycles / techlib.frequency_hz
        return AcceleratorEstimate(
            config=config,
            cycles=cycles,
            area=area.total,
            breakdown=area,
            seq_blocks=seq_blocks,
            pipelined_regions=pipelined_regions,
            interface_counts=plan.counts(),
            invocations=invocations,
            kernel_seconds=kernel_seconds,
            accel_seconds=accel_seconds,
            units=units,
            reports=reports,
        )

    # Helpers -------------------------------------------------------------------------

    @staticmethod
    def _lane_factor(loop: Loop, loop_plans: Dict[Loop, LoopPlan]) -> int:
        """Product of enclosing loops' unroll factors (pipeline lanes)."""
        lanes = 1
        ancestor = loop.parent
        while ancestor is not None and ancestor in loop_plans:
            lanes *= loop_plans[ancestor].unroll
            ancestor = ancestor.parent
        return lanes

    def _top_level_nests(
        self, region: Region, ctx: FunctionContext
    ) -> List[Loop]:
        """Loops in the region whose parent is outside the region."""
        loops = self._loops_in_region(region, ctx)
        loop_set = set(loops)
        return [l for l in loops if l.parent not in loop_set]

    def _loops_in_region(self, region: Region, ctx: FunctionContext) -> List[Loop]:
        return [
            loop for loop in ctx.loop_info.loops if loop.blocks <= region.blocks
        ]

    def _accesses_in_region(
        self, region: Region, ctx: FunctionContext
    ) -> List[AccessInfo]:
        return [
            ctx.access.info(inst)
            for block in ctx.ordered_blocks(region.blocks)
            for inst in block.instructions
            if isinstance(inst, (Load, Store))
        ]

    def _recurrences(
        self, loop: Loop, dfg: DFG, ctx: FunctionContext, unroll_factor: int = 1
    ) -> List[Tuple[DFGNode, DFGNode, int]]:
        return loop_recurrences(loop, dfg, ctx, unroll_factor)

    @staticmethod
    def _region_has_call(region: Region) -> bool:
        return any(
            isinstance(inst, Call)
            for block in region.blocks
            for inst in block.instructions
        )
