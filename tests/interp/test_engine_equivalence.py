"""Compiled-engine equivalence: the closure-compiled execution engine must
be bit-identical to the reference interpreter — results, final memory image,
``cycles``, ``instructions``, elided/checked access counts, and every
``ProfileCounters`` field — including under the sanitizer and the
narrowing interpreter.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import BoundsAnalysis
from repro.frontend import compile_source
from repro.interp import Interpreter, InterpreterError, NarrowingInterpreter
from repro.interp.sanitizer import SanitizingInterpreter
from repro.ir import I32, Module
from repro.workloads import get_workload

# Registry cross-section: PolyBench dense/triangular kernels, a MachSuite
# kernel with calls, and the synthetic soundness stress workloads.
CROSS_SECTION = [
    "trisolv", "bicg", "nw", "jacobi-2d", "fft",
    "bitwidth-adversary", "wave-lag", "smooth-alias",
]


def run_both(name, *, profile=False, elide=True):
    """Run one workload under both engines on the same module object (so
    profile counters are keyed by identical block objects) and return the
    two interpreters plus their results."""
    workload = get_workload(name)
    module = compile_source(workload.source, workload.name)
    bounds = BoundsAnalysis(module) if elide else None
    out = {}
    for engine in ("reference", "compiled"):
        interp = Interpreter(
            module, bounds=bounds, profile=profile, engine=engine
        )
        out[engine] = (interp.run(workload.entry), interp)
    return out


def assert_identical(out):
    (ref_result, ref), (cmp_result, cmp_) = out["reference"], out["compiled"]
    assert ref_result == cmp_result
    assert ref.memory.data == cmp_.memory.data
    assert ref.cycles == cmp_.cycles
    assert ref.instructions == cmp_.instructions
    assert ref.elided_accesses == cmp_.elided_accesses
    assert ref.checked_accesses == cmp_.checked_accesses


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", CROSS_SECTION)
    def test_bit_identical_elided(self, name):
        assert_identical(run_both(name, elide=True))

    @pytest.mark.parametrize("name", ["trisolv", "wave-lag"])
    def test_bit_identical_fully_checked(self, name):
        out = run_both(name, elide=False)
        assert_identical(out)
        assert out["compiled"][1].elided_accesses == 0

    @pytest.mark.parametrize("name", ["trisolv", "nw", "fft"])
    def test_profile_counters_identical(self, name):
        out = run_both(name, profile=True)
        assert_identical(out)
        ref, cmp_ = out["reference"][1].counters, out["compiled"][1].counters
        assert ref.block_count == cmp_.block_count
        assert ref.block_instructions == cmp_.block_instructions
        assert ref.block_cycles == pytest.approx(cmp_.block_cycles)
        assert ref.edge_count == cmp_.edge_count
        assert ref.func_entry_count == cmp_.func_entry_count


class TestInstrumentedEquivalence:
    @pytest.mark.parametrize("name", ["trisolv", "smooth-alias", "wave-lag"])
    def test_sanitizer_identical(self, name):
        workload = get_workload(name)
        out = {}
        for engine in ("reference", "compiled"):
            module = compile_source(workload.source, workload.name)
            interp = SanitizingInterpreter(
                module, fail_fast=False, engine=engine
            )
            result = interp.run(workload.entry)
            out[engine] = (
                result, interp.violations, interp.accesses_checked,
                interp.values_checked, interp.instructions, interp.cycles,
                bytes(interp.memory.data),
            )
        assert out["reference"] == out["compiled"]

    def test_sanitizer_injection_caught_on_compiled_engine(self):
        workload = get_workload("bitwidth-adversary")
        counts = {}
        for engine in ("reference", "compiled"):
            module = compile_source(workload.source, workload.name)
            interp = SanitizingInterpreter(
                module, fail_fast=False, inject_unsound_bitwidth=True,
                engine=engine,
            )
            interp.run(workload.entry)
            counts[engine] = len(interp.violations)
        assert counts["compiled"] > 0
        assert counts["reference"] == counts["compiled"]

    @pytest.mark.parametrize("name", ["trisolv", "bitwidth-adversary"])
    def test_narrowing_identical(self, name):
        workload = get_workload(name)
        out = {}
        for engine in ("reference", "compiled"):
            module = compile_source(workload.source, workload.name)
            interp = NarrowingInterpreter(module, engine=engine)
            result = interp.run(workload.entry)
            assert interp.narrowing_active, "narrowing must actually engage"
            out[engine] = (
                result, interp.instructions, interp.cycles,
                bytes(interp.memory.data),
            )
        assert out["reference"] == out["compiled"]


class TestErrorSemantics:
    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    @pytest.mark.parametrize("amount", ["40", "-1", "n"])
    def test_shift_amount_out_of_range_traps(self, engine, amount):
        # i32 shifts by >= 32 (or negative) must trap, matching lint rule
        # IR008's provable-overflow verdict — not silently produce a value.
        source = f"int main(int n) {{ int x = 3; return x << ({amount}); }}"
        module = compile_source(source, "shift", optimize=False)
        interp = Interpreter(module, engine=engine)
        with pytest.raises(InterpreterError, match="out of range"):
            interp.run("main", [40])

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_in_range_shift_still_works(self, engine):
        module = compile_source(
            "int main(int n) { int x = 3; return x << n; }",
            "shift", optimize=False,
        )
        interp = Interpreter(module, engine=engine)
        assert interp.run("main", [4]) == 48

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_empty_block_is_an_interpreter_error(self, engine):
        # Malformed IR (unverified): an empty entry block must raise a
        # proper InterpreterError, not a bare IndexError.
        module = Module("m")
        func = module.add_function("f", I32, [])
        func.add_block("entry")
        interp = Interpreter(module, engine=engine)
        with pytest.raises(InterpreterError, match="block entry is empty"):
            interp.run("f")

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_instruction_limit_enforced(self, engine):
        from repro.interp import ExecutionLimitExceeded

        module = compile_source(
            "int main() { int s = 0; for (int i = 0; i < 100000; i++) s += i;"
            " return s; }",
            "limit", optimize=False,
        )
        interp = Interpreter(module, max_instructions=1000, engine=engine)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run("main")


# Randomized equivalence: generated integer programs with data-dependent
# control flow must execute identically under both engines.

constants = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
small_constants = st.integers(min_value=-64, max_value=64)


@st.composite
def branchy_programs(draw):
    """``int main()``: a chain of integer defs followed by a loop that
    conditionally re-accumulates them — exercises phis, condbr, and every
    specialized binary-op shape."""
    count = draw(st.integers(min_value=1, max_value=8))
    statements = []
    for index in range(count):
        def operand():
            if index and draw(st.booleans()):
                return f"v{draw(st.integers(min_value=0, max_value=index - 1))}"
            return str(draw(constants if draw(st.booleans()) else small_constants))

        kind = draw(st.sampled_from(("binary", "shift", "divmod")))
        if kind == "binary":
            op = draw(st.sampled_from(("+", "-", "*", "&", "|", "^")))
            expr = f"{operand()} {op} {operand()}"
        elif kind == "shift":
            amount = draw(st.integers(min_value=0, max_value=31))
            expr = f"{operand()} {draw(st.sampled_from(('<<', '>>')))} {amount}"
        else:
            divisor = draw(st.integers(min_value=1, max_value=1000))
            expr = f"{operand()} {draw(st.sampled_from(('/', '%')))} {divisor}"
        statements.append(f"  int v{index} = {expr};")
    body = "\n".join(statements)
    trip = draw(st.integers(min_value=0, max_value=20))
    threshold = draw(small_constants)
    return (
        "int main() {\n"
        f"{body}\n"
        "  int acc = 0;\n"
        f"  for (int i = 0; i < {trip}; i++) {{\n"
        f"    if (v{count - 1} > {threshold}) acc += v{draw(st.integers(min_value=0, max_value=count - 1))};\n"
        "    else acc -= i;\n"
        "  }\n"
        f"  return acc + v{count - 1};\n"
        "}\n"
    )


@given(branchy_programs())
@settings(max_examples=40, deadline=None)
def test_random_programs_execute_identically(source):
    module = compile_source(source, "prop", optimize=False)
    runs = {}
    for engine in ("reference", "compiled"):
        interp = Interpreter(module, profile=True, engine=engine)
        result = interp.run("main")
        runs[engine] = (
            result, interp.instructions, interp.cycles,
            dict(interp.counters.block_count),
            dict(interp.counters.block_instructions),
            dict(interp.counters.edge_count),
        )
    assert runs["reference"] == runs["compiled"], source
