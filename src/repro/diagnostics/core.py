"""Core data structures of the diagnostics engine.

A :class:`Diagnostic` is one structured finding produced by a lint rule:
a stable rule code, a severity, a source location inside the IR/analysis
object graph, a human-readable message, and (optionally) a suggestion for
how to fix or silence the finding.  :class:`LintResult` aggregates the
findings of one engine run and maps them to conventional exit codes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.IntEnum):
    """Finding severity; ordering matters (``ERROR`` is the most severe)."""

    NOTE = 0
    INFO = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a finding anchors inside the compiled application.

    All fields are optional: an IR rule typically fills ``function`` and
    ``block``; a config rule fills ``function`` and ``detail`` (the loop or
    interface assignment it concerns).
    """

    function: Optional[str] = None
    block: Optional[str] = None
    instruction: Optional[str] = None
    detail: Optional[str] = None

    def __str__(self) -> str:
        parts = [p for p in (self.function, self.block, self.instruction) if p]
        text = "/".join(parts) if parts else "<module>"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding."""

    code: str
    severity: Severity
    location: Location
    message: str
    suggestion: Optional[str] = None

    def to_dict(self) -> Dict:
        data = {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location.to_dict(),
            "message": self.message,
        }
        if self.suggestion:
            data["suggestion"] = self.suggestion
        return data

    def render(self) -> str:
        line = f"{self.severity}: [{self.code}] {self.location}: {self.message}"
        if self.suggestion:
            line += f"\n  suggestion: {self.suggestion}"
        return line


@dataclass
class LintResult:
    """All findings of one engine run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Rule codes that were evaluated (even when they produced no findings);
    #: rules skipped for missing inputs (e.g. no profile) are absent.
    checked_rules: List[str] = field(default_factory=list)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def exit_code(self, strict: bool = False) -> int:
        """Conventional exit code: 1 when errors (or, with ``strict``,
        warnings) are present, 0 otherwise."""
        threshold = Severity.WARNING if strict else Severity.ERROR
        if any(d.severity >= threshold for d in self.diagnostics):
            return 1
        return 0

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for diag in self.diagnostics:
            counts[str(diag.severity)] = counts.get(str(diag.severity), 0) + 1
        if not counts:
            return f"clean ({len(self.checked_rules)} rules checked)"
        parts = [
            f"{counts[name]} {name}{'s' if counts[name] != 1 else ''}"
            for name in ("error", "warning", "info", "note")
            if name in counts
        ]
        return ", ".join(parts)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "diagnostics": [d.to_dict() for d in self.diagnostics],
                "checked_rules": list(self.checked_rules),
                "summary": self.summary(),
                "exit_code": self.exit_code(),
            },
            indent=indent,
        )
