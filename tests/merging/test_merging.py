"""Tests for accelerator merging: op matching, reconfigurable datapaths,
and the greedy solution-level merge driver (paper §III-E, Fig. 5)."""

import pytest

from repro.frontend import compile_source
from repro.hls import DEFAULT_TECHLIB, DFG
from repro.merging import (
    AcceleratorMerger,
    MergedUnit,
    estimate_pair_saving,
    match_units,
    merge_pair,
    merge_solution,
    unit_fu_area,
)
from repro.selection import Solution


def dfg_of(source, fname="f", block="entry"):
    module = compile_source(source, optimize=False)
    func = module.get_function(fname)
    return DFG.from_blocks([func.block_by_name(block)])


LINEAR = "float x[8]; float y[8]; void f(int i, float k, float b) { y[i] = k * x[i] + b; }"
DOT = "float a[8]; float b[8]; float z[8]; void f(int i) { z[i] = z[i] + a[i] * b[i]; }"
INTS = "int g[8]; void f(int i) { g[i] = (i * 3 + 1) & 255; }"


class TestOpMatch:
    def test_identical_units_match_fully(self):
        a = dfg_of(LINEAR)
        b = dfg_of(LINEAR)
        match = match_units(a, b, DEFAULT_TECHLIB)
        assert len(match.pairs) == min(len(a), len(b))
        # Identical wiring: producers match, so no muxes at all.
        assert match.mux_area == 0
        assert match.shared_area == pytest.approx(unit_fu_area(a, DEFAULT_TECHLIB))

    def test_similar_units_share_common_ops(self):
        a = dfg_of(LINEAR)  # fmul + fadd (+ ld/st/gep)
        b = dfg_of(DOT)     # fmul + fadd (+ lds/st/geps)
        match = match_units(a, b, DEFAULT_TECHLIB)
        matched_resources = {na.resource for na, _ in match.pairs}
        assert "fmul" in matched_resources and "fadd" in matched_resources

    def test_disjoint_resources_no_match(self):
        a = dfg_of(LINEAR)
        b = dfg_of(INTS)
        match = match_units(a, b, DEFAULT_TECHLIB)
        matched = {na.resource for na, _ in match.pairs}
        assert "fmul" not in matched and "fadd" not in matched

    def test_mux_cost_for_different_wiring(self):
        a = dfg_of("float g[4]; void f(float p, float q) { g[0] = p * q + p; }")
        b = dfg_of("float g[4]; void f(float p, float q) { g[0] = p * q + (p * q) * q; }")
        match = match_units(a, b, DEFAULT_TECHLIB)
        assert match.mux_area > 0
        assert match.config_bits > 0

    def test_width_classes_not_mixed(self):
        a = dfg_of("double g[4]; void f(double p) { g[0] = p + p; }")
        b = dfg_of("float g[4]; void f(float p) { g[0] = p + p; }")
        match = match_units(a, b, DEFAULT_TECHLIB)
        matched = {na.resource for na, _ in match.pairs if na.resource == "fadd"}
        assert not matched  # f64 adder cannot absorb f32 adder


class TestMergePair:
    def test_merged_unit_op_count(self):
        a = MergedUnit("a", dfg_of(LINEAR), owner=0, member_names=["a"])
        b = MergedUnit("b", dfg_of(DOT), owner=1, member_names=["b"])
        saving, match = estimate_pair_saving(a, b, DEFAULT_TECHLIB)
        merged = merge_pair(a, b, DEFAULT_TECHLIB, match)
        assert len(merged.dfg.nodes) == (
            len(a.dfg.nodes) + len(b.dfg.nodes) - len(match.pairs)
        )
        assert merged.member_names == ["a", "b"]

    def test_merged_area_bounded(self):
        """Merged unit area <= sum of parts (otherwise merging is refused)."""
        a = MergedUnit("a", dfg_of(LINEAR), owner=0, member_names=["a"])
        b = MergedUnit("b", dfg_of(LINEAR), owner=1, member_names=["b"])
        saving, match = estimate_pair_saving(a, b, DEFAULT_TECHLIB)
        merged = merge_pair(a, b, DEFAULT_TECHLIB, match)
        parts = a.total_area(DEFAULT_TECHLIB) + b.total_area(DEFAULT_TECHLIB)
        assert merged.total_area(DEFAULT_TECHLIB) <= parts
        assert saving == pytest.approx(
            parts - merged.total_area(DEFAULT_TECHLIB)
        )

    def test_identical_merge_saving_is_half(self):
        a = MergedUnit("a", dfg_of(LINEAR), owner=0, member_names=["a"])
        b = MergedUnit("b", dfg_of(LINEAR), owner=1, member_names=["b"])
        saving, _ = estimate_pair_saving(a, b, DEFAULT_TECHLIB)
        assert saving == pytest.approx(unit_fu_area(a.dfg, DEFAULT_TECHLIB))


def cayman_solution(source, budget_ratio=2.0):
    """Run selection on a source and return the largest-area solution."""
    from repro.analysis import WPST
    from repro.interp import profile_module
    from repro.model import AcceleratorModel
    from repro.selection import CandidateSelector, PruneHeuristic

    module = compile_source(source)
    profile = profile_module(module)
    wpst = WPST(module)
    model = AcceleratorModel(module, profile)
    selector = CandidateSelector(
        wpst, model, prune=PruneHeuristic(profile), alpha=1.1
    )
    front = selector.run()
    non_empty = [s for s in front if not s.is_empty]
    return max(non_empty, key=lambda s: s.area), profile


THREE_IDENTICAL_LOOPS = """
float a1[64]; float a2[64]; float a3[64];
float b1[64]; float b2[64]; float b3[64];
void k1(int n) { l1: for (int i = 0; i < n; i++) b1[i] = 2.0f * a1[i] + 1.0f; }
void k2(int n) { l2: for (int i = 0; i < n; i++) b2[i] = 2.0f * a2[i] + 1.0f; }
void k3(int n) { l3: for (int i = 0; i < n; i++) b3[i] = 2.0f * a3[i] + 1.0f; }
int main() {
  for (int r = 0; r < 30; r++) { k1(64); k2(64); k3(64); }
  return 0;
}
"""


class TestMergeDriver:
    def test_identical_kernels_merge_substantially(self):
        solution, _ = cayman_solution(THREE_IDENTICAL_LOOPS)
        merged = merge_solution(solution)
        assert merged.merge_steps > 0
        # Like the paper's 3mm: identical datapaths give large savings.
        assert merged.saving_pct > 25

    def test_reusable_accelerator_members(self):
        solution, _ = cayman_solution(THREE_IDENTICAL_LOOPS)
        merged = merge_solution(solution)
        reusable = [a for a in merged.accelerators if a.is_reusable]
        assert reusable
        assert max(a.region_count for a in reusable) >= 2

    def test_area_never_negative_or_increased(self):
        solution, _ = cayman_solution(THREE_IDENTICAL_LOOPS)
        merged = merge_solution(solution)
        assert 0 <= merged.area_after <= merged.area_before

    def test_speedup_unchanged_by_merging(self):
        solution, profile = cayman_solution(THREE_IDENTICAL_LOOPS)
        merged = merge_solution(solution)
        assert merged.speedup(profile.total_seconds) == pytest.approx(
            solution.speedup(profile.total_seconds)
        )

    def test_single_accelerator_solution_no_merge_across(self):
        src = """
        float a[64]; float b[64];
        void k(int n) { l: for (int i = 0; i < n; i++) b[i] = 2.0f * a[i]; }
        int main() { for (int r = 0; r < 50; r++) k(64); return 0; }
        """
        solution, _ = cayman_solution(src)
        merged = merge_solution(solution)
        assert all(not a.is_reusable for a in merged.accelerators)

    def test_restricted_merging_blocks_dissimilar(self):
        solution, _ = cayman_solution(THREE_IDENTICAL_LOOPS)
        permissive = AcceleratorMerger(DEFAULT_TECHLIB).merge(solution)
        restricted = AcceleratorMerger(
            DEFAULT_TECHLIB, min_match_fraction=0.999
        ).merge(solution)
        assert restricted.saving <= permissive.saving + 1e-9

    def test_max_steps_cap(self):
        solution, _ = cayman_solution(THREE_IDENTICAL_LOOPS)
        merged = AcceleratorMerger(DEFAULT_TECHLIB, max_steps=1).merge(solution)
        assert merged.merge_steps <= 1

    def test_mean_regions_per_reusable(self):
        solution, _ = cayman_solution(THREE_IDENTICAL_LOOPS)
        merged = merge_solution(solution)
        if any(a.is_reusable for a in merged.accelerators):
            assert merged.mean_regions_per_reusable >= 2
