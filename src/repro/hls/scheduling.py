"""Resource-constrained list scheduling with operator chaining.

This is the HLS scheduler of the substrate: given a DFG, the technology
library, and the per-access interface assignment, it produces a cycle
schedule honoring

* data and memory-ordering dependences,
* operator chaining within the clock period (combinational ops pack into a
  cycle while their accumulated delay fits),
* multi-cycle pipelined operators (fadd, fmul, loads...),
* shared-port contention: accesses mapped to the *coupled* interface share
  the accelerator's load/store unit; *scratchpad* accesses share their
  buffer's ports (raised by memory partitioning); *decoupled* accesses have
  private FIFO ports and never contend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .dfg import DFG, DFGNode
from .techlib import TechLibrary


@dataclass(frozen=True)
class AccessTiming:
    """Scheduling view of one memory access under a chosen interface.

    ``latency``    — cycles from issue to data available.
    ``port``       — port-group name accesses contend on (None = private).
    ``occupancy``  — cycles the access blocks its port group.
    """

    latency: int
    port: Optional[str]
    occupancy: int = 1


@dataclass
class Schedule:
    """Result of list scheduling one DFG."""

    start: Dict[DFGNode, int] = field(default_factory=dict)
    finish: Dict[DFGNode, int] = field(default_factory=dict)
    length: int = 0  # total cycles (states) of the schedule

    def slack_free_depth(self) -> int:
        return self.length


class PortTable:
    """Tracks busy cycles per port group during scheduling."""

    def __init__(self, port_counts: Dict[str, int]):
        self.port_counts = port_counts
        self._busy: Dict[str, Dict[int, int]] = {name: {} for name in port_counts}

    def earliest_free(self, port: str, cycle: int, occupancy: int) -> int:
        limit = self.port_counts.get(port, 1)
        busy = self._busy.setdefault(port, {})
        while True:
            if all(busy.get(cycle + i, 0) < limit for i in range(occupancy)):
                return cycle
            cycle += 1

    def reserve(self, port: str, cycle: int, occupancy: int) -> None:
        busy = self._busy.setdefault(port, {})
        for i in range(occupancy):
            busy[cycle + i] = busy.get(cycle + i, 0) + 1


def schedule_dfg(
    dfg: DFG,
    techlib: TechLibrary,
    access_timing: Callable[[DFGNode], AccessTiming],
    port_counts: Optional[Dict[str, int]] = None,
) -> Schedule:
    """List-schedule ``dfg`` and return per-node start/finish cycles.

    ``access_timing`` supplies interface latency and port contention for each
    memory node (see :mod:`repro.model.interfaces`).
    """
    ports = PortTable(dict(port_counts or {}))
    schedule = Schedule()
    clock = techlib.clock_ns
    # (cycle, offset_ns) at which each node's result becomes available.
    available: Dict[DFGNode, Tuple[int, float]] = {}

    for node in dfg.topological_order():
        # Earliest start from dependences.
        ready_cycle = 0
        ready_offset = 0.0
        for pred in node.preds:
            cycle, offset = available[pred]
            if (cycle, offset) > (ready_cycle, ready_offset):
                ready_cycle, ready_offset = cycle, offset
        for pred in node.order_preds:
            # Ordering edges release at the predecessor's finish boundary.
            cycle = schedule.finish[pred]
            if (cycle, 0.0) > (ready_cycle, ready_offset):
                ready_cycle, ready_offset = cycle, 0.0

        if node.is_memory:
            timing = access_timing(node)
            start = ready_cycle if ready_offset == 0.0 else ready_cycle + 1
            if timing.port is not None:
                start = ports.earliest_free(timing.port, start, timing.occupancy)
                ports.reserve(timing.port, start, timing.occupancy)
            finish = start + max(1, timing.latency)
            available[node] = (finish, 0.0)
            schedule.start[node] = start
            schedule.finish[node] = finish
        else:
            info = techlib.op(node.resource, node.bits)
            if info.cycles == 0:
                # Combinational: chain if the delay still fits this cycle.
                if ready_offset + info.delay_ns <= clock:
                    start = ready_cycle
                    available[node] = (start, ready_offset + info.delay_ns)
                else:
                    start = ready_cycle + 1
                    available[node] = (start, info.delay_ns)
                schedule.start[node] = start
                schedule.finish[node] = start + 1
            else:
                # Registered multi-cycle operator: starts at a cycle boundary.
                start = ready_cycle if ready_offset == 0.0 else ready_cycle + 1
                finish = start + info.cycles
                available[node] = (finish, 0.0)
                schedule.start[node] = start
                schedule.finish[node] = finish

    schedule.length = max(
        (schedule.finish[node] for node in dfg.nodes), default=1
    )
    schedule.length = max(1, schedule.length)
    return schedule


def functional_unit_usage(dfg: DFG, schedule: Schedule) -> Dict[str, int]:
    """Maximum number of same-class operations active in any one cycle.

    This is the number of functional units a *sequential* (time-multiplexed)
    implementation needs per resource class.
    """
    per_cycle: Dict[Tuple[str, int], int] = {}
    peak: Dict[str, int] = {}
    for node in dfg.nodes:
        resource = node.resource
        for cycle in range(schedule.start[node], schedule.finish[node]):
            key = (resource, cycle)
            per_cycle[key] = per_cycle.get(key, 0) + 1
            if per_cycle[key] > peak.get(resource, 0):
                peak[resource] = per_cycle[key]
    return peak


def register_bits(dfg: DFG, schedule: Schedule) -> int:
    """Bits of state needed for values that cross a cycle boundary."""
    bits = 0
    for node in dfg.nodes:
        if not node.succs:
            continue
        last_use = max(schedule.start[succ] for succ in node.succs)
        if last_use > schedule.start[node]:
            bits += node.bits
    return bits


def critical_path_cycles(
    dfg: DFG,
    techlib: TechLibrary,
    access_timing: Callable[[DFGNode], AccessTiming],
    source: DFGNode,
    sink: DFGNode,
) -> int:
    """Longest-path latency in cycles from ``source`` to ``sink`` (inclusive).

    Used for RecMII: the recurrence cycle length of a loop-carried flow
    dependence is the path latency from the loading access through the
    computation to the storing access.
    """
    longest: Dict[DFGNode, float] = {}

    def node_latency(node: DFGNode) -> float:
        if node.is_memory:
            return max(1, access_timing(node).latency)
        info = techlib.op(node.resource, node.bits)
        return info.cycles if info.cycles > 0 else info.delay_ns / techlib.clock_ns

    for node in dfg.topological_order():
        if node is source:
            longest[node] = node_latency(node)
            continue
        best = None
        for pred in node.all_preds():
            if pred in longest:
                value = longest[pred]
                if best is None or value > best:
                    best = value
        if best is not None:
            longest[node] = best + node_latency(node)
    if sink not in longest:
        return 1
    return max(1, round(longest[sink]))
