"""IR text parser tests: grammar units plus full print→parse round-trips
over every benchmark workload (structure- and semantics-preserving)."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import (
    ArrayType,
    F32,
    F64,
    I32,
    IRParseError,
    PointerType,
    VOID,
    parse_module,
    parse_type,
    print_module,
    verify_module,
)
from repro.workloads import all_workloads


class TestTypeParsing:
    @pytest.mark.parametrize("text,expected", [
        ("i32", I32),
        ("f64", F64),
        ("void", VOID),
        ("f32*", PointerType(F32)),
        ("[10 x f32]", ArrayType(F32, 10)),
        ("[3 x [4 x i32]]", ArrayType(ArrayType(I32, 4), 3)),
        ("[4 x f32]*", PointerType(ArrayType(F32, 4))),
    ])
    def test_valid(self, text, expected):
        assert parse_type(text) == expected

    @pytest.mark.parametrize("text", ["x32", "[3 f32]", "i32 junk", "[3 x f32"])
    def test_invalid(self, text):
        with pytest.raises(IRParseError):
            parse_type(text)


class TestModuleParsing:
    def test_globals(self):
        module = parse_module("; module m\n\n@g = global [8 x f32]\n")
        assert module.name == "m"
        assert module.get_global("g").allocated_type == ArrayType(F32, 8)

    def test_simple_function(self):
        text = """
func i32 @add3(i32 %a) {
entry:
  %r = add i32 %a, 3
  ret %r
}
"""
        module = parse_module(text)
        verify_module(module)
        assert Interpreter(module).run("add3", [39]) == 42

    def test_forward_branch_targets(self):
        text = """
func i32 @f(i32 %a) {
entry:
  %c = icmp sgt i32 %a, 0
  condbr %c, pos, neg
pos:
  ret 1
neg:
  ret 0
}
"""
        module = parse_module(text)
        verify_module(module)
        assert Interpreter(module).run("f", [5]) == 1
        assert Interpreter(module).run("f", [-5]) == 0

    def test_phi_and_loop(self):
        text = """
func i32 @sum(i32 %n) {
entry:
  br header
header:
  %i = phi i32 [0, entry], [%i1, body]
  %s = phi i32 [0, entry], [%s1, body]
  %c = icmp slt i32 %i, %n
  condbr %c, body, exit
body:
  %s1 = add i32 %s, %i
  %i1 = add i32 %i, 1
  br header
exit:
  ret %s
}
"""
        module = parse_module(text)
        verify_module(module)
        assert Interpreter(module).run("sum", [10]) == 45

    def test_calls_between_functions(self):
        text = """
func i32 @dbl(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret %r
}

func i32 @main() {
entry:
  %a = call @dbl(21)
  ret %a
}
"""
        module = parse_module(text)
        assert Interpreter(module).run("main") == 42

    def test_undefined_value_rejected(self):
        with pytest.raises(IRParseError, match="undefined"):
            parse_module("func i32 @f() {\nentry:\n  ret %nope\n}")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IRParseError, match="unknown opcode"):
            parse_module("func i32 @f() {\nentry:\n  %x = warp i32 1, 2\n  ret %x\n}")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name", [w.name for w in all_workloads()]
    )
    def test_workload_roundtrip_stable(self, name):
        """print(parse(print(m))) == print(m) for every benchmark."""
        from repro.workloads import get_workload

        workload = get_workload(name)
        module = compile_source(workload.source, name)
        text = print_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text

    @pytest.mark.parametrize("name", ["atax", "fft", "zip-test", "nw"])
    def test_roundtrip_preserves_semantics(self, name):
        from repro.workloads import get_workload

        workload = get_workload(name)
        module = compile_source(workload.source, name)
        reparsed = parse_module(print_module(module))
        a = Interpreter(module)
        b = Interpreter(reparsed)
        assert a.run(workload.entry) == b.run(workload.entry)
        assert a.instructions == b.instructions
