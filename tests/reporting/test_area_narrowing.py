"""Bench-level validation of the datapath-narrowing area probe.

The acceptance bar for the bitwidth work: at least three PolyBench /
MachSuite workloads must show strictly smaller estimated datapath area at
equal schedule latency, and the ``area_narrowing`` section must be
deterministic enough for ``--compare-to`` to exact-compare it.
"""

import json

import pytest

from repro.reporting.bench import (
    EvaluationEngine,
    FlowParams,
    area_narrowing_stats,
    build_report,
    compare_reports,
)

# trisolv/bicg/mvt are PolyBench, nw is MachSuite.
NARROWING_NAMES = ["trisolv", "bicg", "mvt", "nw"]


@pytest.fixture(scope="module")
def stats():
    return area_narrowing_stats(NARROWING_NAMES)


class TestAreaNarrowingStats:
    def test_every_workload_present(self, stats):
        assert sorted(stats) == sorted(NARROWING_NAMES)

    @pytest.mark.parametrize("name", NARROWING_NAMES)
    def test_strictly_smaller_area_at_equal_latency(self, stats, name):
        entry = stats[name]
        assert entry["proven_area_um2"] < entry["type_area_um2"]
        assert entry["latency_equal"]
        assert entry["latency_type"] == entry["latency_proven"]

    @pytest.mark.parametrize("name", NARROWING_NAMES)
    def test_narrowed_op_counts_consistent(self, stats, name):
        entry = stats[name]
        assert 0 < entry["narrowed_ops"] <= entry["int_ops"]
        assert 0.0 < entry["saving_pct"] < 100.0

    def test_deterministic_across_recomputation(self, stats):
        assert area_narrowing_stats(NARROWING_NAMES) == stats


class TestAreaNarrowingInReports:
    @pytest.fixture(scope="class")
    def payload(self, stats):
        engine = EvaluationEngine(FlowParams())
        return build_report([], engine, "t", 0.0, area_narrowing=stats)

    def test_section_included(self, payload, stats):
        assert payload["area_narrowing"] == stats

    def test_omitted_when_not_supplied(self):
        engine = EvaluationEngine(FlowParams())
        payload = build_report([], engine, "t", 0.0)
        assert "area_narrowing" not in payload

    def test_compare_identical_after_json_roundtrip(self, payload):
        roundtrip = json.loads(json.dumps(payload))
        assert compare_reports(payload, roundtrip) == []

    def test_compare_detects_perturbed_field(self, payload):
        tampered = json.loads(json.dumps(payload))
        tampered["area_narrowing"]["trisolv"]["proven_area_um2"] += 0.001
        problems = compare_reports(payload, tampered)
        assert any("area_narrowing/trisolv" in p for p in problems)

    def test_compare_detects_missing_workload(self, payload):
        shrunk = json.loads(json.dumps(payload))
        del shrunk["area_narrowing"]["nw"]
        problems = compare_reports(payload, shrunk)
        assert any("area_narrowing/nw" in p for p in problems)
