"""Tests for constant folding, LICM, and CFG simplification — including
semantic-preservation property tests against the interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import BinaryOp, Branch, CondBranch, Constant, verify_module
from repro.opt import (
    fold_constants,
    hoist_invariants,
    optimize_module,
    simplify_cfg,
)


def compile_noopt(src):
    return compile_source(src, optimize=False)


class TestConstFold:
    def test_folds_constant_arithmetic(self):
        module = compile_noopt("int main() { return (3 + 4) * 5 - 100 / 10; }")
        func = module.get_function("main")
        fold_constants(func)
        from repro.ir import Return

        ret = func.entry.terminator
        assert isinstance(ret, Return)
        assert isinstance(ret.value, Constant)
        assert ret.value.value == 25

    def test_identities(self):
        module = compile_noopt(
            "int f(int x) { return ((x + 0) * 1 - 0) + (x - x); }"
        )
        func = module.get_function("f")
        fold_constants(func)
        # Everything reduces to `ret x`; no arithmetic remains.
        assert not any(isinstance(i, BinaryOp) for i in func.instructions())

    def test_mul_by_zero(self):
        module = compile_noopt("int f(int x) { return x * 0; }")
        func = module.get_function("f")
        fold_constants(func)
        ret = func.entry.terminator
        assert isinstance(ret.value, Constant) and ret.value.value == 0

    def test_int_overflow_wraps(self):
        module = compile_noopt("int main() { return 2147483647 + 1 < 0; }")
        func = module.get_function("main")
        fold_constants(func)
        assert Interpreter(module).run("main") == 1

    def test_comparison_folding(self):
        module = compile_noopt("int main() { if (3 < 5) return 1; return 2; }")
        func = module.get_function("main")
        fold_constants(func)
        term = func.entry.terminator
        assert isinstance(term, CondBranch)
        assert isinstance(term.condition, Constant)

    def test_cast_folding(self):
        module = compile_noopt("int main() { return (int)(2.75f * 2.0f); }")
        func = module.get_function("main")
        fold_constants(func)
        assert Interpreter(module).run("main") == 5


class TestLICM:
    def test_hoists_invariant_multiply(self):
        src = """
        float out[64];
        void f(int n, float a, float b) {
          loop: for (int i = 0; i < n; i++) out[i] = (a * b) + (float)i;
        }
        """
        module = compile_noopt(src)
        func = module.get_function("f")
        count = hoist_invariants(func)
        assert count >= 1
        verify_module(module)
        body = func.block_by_name("loop.body")
        assert not any(
            i.opcode == "fmul" for i in body.instructions
        ), "a*b should have left the loop body"

    def test_does_not_hoist_variant(self):
        src = """
        float out[64];
        void f(int n, float a) {
          loop: for (int i = 0; i < n; i++) out[i] = a * (float)i;
        }
        """
        module = compile_noopt(src)
        func = module.get_function("f")
        hoist_invariants(func)
        body = func.block_by_name("loop.body")
        assert any(i.opcode == "fmul" for i in body.instructions)

    def test_does_not_hoist_division(self):
        """Hoisting a div could trap on the zero-trip path."""
        src = """
        float out[64];
        void f(int n, float a, float b) {
          loop: for (int i = 0; i < n; i++) out[i] = a / b;
        }
        """
        module = compile_noopt(src)
        func = module.get_function("f")
        hoist_invariants(func)
        body = func.block_by_name("loop.body")
        assert any(i.opcode == "fdiv" for i in body.instructions)

    def test_nested_hoist_to_outermost(self):
        src = """
        float out[8][8];
        void f(int n, float a, float b) {
          o: for (int i = 0; i < n; i++)
            in: for (int j = 0; j < n; j++)
              out[i][j] = a * b;
        }
        """
        module = compile_noopt(src)
        func = module.get_function("f")
        hoist_invariants(func)
        verify_module(module)
        entry = func.entry
        assert any(i.opcode == "fmul" for i in entry.instructions)


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        module = compile_noopt("int main() { if (1) return 5; return 6; }")
        func = module.get_function("main")
        fold_constants(func)
        simplify_cfg(func)
        verify_module(module)
        assert Interpreter(module).run("main") == 5
        assert len(func.blocks) == 1

    def test_straightline_merge(self):
        module = compile_noopt(
            "int f(int a) { int x = a + 1; { int y = x * 2; return y; } }"
        )
        func = module.get_function("f")
        before = len(func.blocks)
        simplify_cfg(func)
        assert len(func.blocks) <= before
        verify_module(module)

    def test_loop_structure_preserved(self):
        src = """
        int main() {
          int s = 0;
          loop: for (int i = 0; i < 10; i++) s += i;
          return s;
        }
        """
        module = compile_noopt(src)
        func = module.get_function("main")
        simplify_cfg(func)
        verify_module(module)
        assert Interpreter(module).run("main") == 45
        from repro.analysis import LoopInfo

        assert len(LoopInfo(func).loops) == 1

    def test_forwarder_bypassed(self):
        src = """
        int f(int a) {
          int r = 0;
          if (a > 0) { r = 1; } else { r = 2; }
          return r;
        }
        """
        module = compile_noopt(src)
        func = module.get_function("f")
        simplify_cfg(func)
        verify_module(module)
        interp_module = compile_noopt(src)
        for value in (-3, 0, 7):
            assert (
                Interpreter(module).run("f", [value])
                == Interpreter(interp_module).run("f", [value])
            )


# -- Property test: the whole pipeline preserves program results -----------------


@st.composite
def random_scalar_program(draw):
    """A small straight-line + branch + loop integer program."""
    consts = draw(st.lists(st.integers(-50, 50), min_size=3, max_size=6))
    ops = draw(st.lists(st.sampled_from(["+", "-", "*", "&", "|", "^"]),
                        min_size=2, max_size=5))
    expr = f"a"
    for i, op in enumerate(ops):
        expr = f"({expr} {op} {consts[i % len(consts)]})"
    bound = draw(st.integers(1, 12))
    threshold = draw(st.integers(-10, 10))
    return f"""
    int f(int a) {{
      int acc = 0;
      for (int i = 0; i < {bound}; i++) {{
        int v = {expr};
        if (v > {threshold}) acc += v; else acc -= i;
        a = a + 1;
      }}
      return acc;
    }}
    """


@given(random_scalar_program(), st.integers(-20, 20))
@settings(max_examples=50, deadline=None)
def test_pipeline_preserves_semantics(source, arg):
    plain = compile_source(source, optimize=False)
    optimized = compile_source(source, optimize=True)
    verify_module(optimized)
    assert (
        Interpreter(plain).run("f", [arg])
        == Interpreter(optimized).run("f", [arg])
    )
