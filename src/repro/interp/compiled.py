"""Compile-once execution engine: IR functions as specialized Python code.

The reference interpreter (``interpreter.py``) re-decides everything per
executed instruction: an isinstance dispatch chain, a dict lookup per
operand, a cost-table lookup per cycle charge, and a bounds-elision branch
per memory access.  This module removes all of that by translating each IR
function *once* into specialized Python code:

* **one function per basic block**, direct-threaded — each block function
  returns the next block's function (or ``None`` on return), so the driver
  loop is just ``while fn is not None: fn = fn(S, X)``;
* **operand fetch specialization** — ``Constant``/``GlobalVariable``/
  ``UndefValue`` operands are resolved to literals at compile time, and SSA
  values live in a flat slot list ``S`` indexed by compile-time-assigned
  integers (no per-operand dict hashing);
* **elision verdict baked in** — each Load/Store compiles to either the
  checked or the unchecked access sequence, chosen once per elision mode
  (one ``CompiledProgram`` per mode, cached on the interpreter);
* **phi nodes as edge-specific copies** — every jump site writes exactly
  the phi slots of its target, two-phase so parallel-copy semantics hold;
* **cycle costs pre-summed per block** — the CPU cost model charge for a
  block is a compile-time float constant added once per execution.

The engine is **bit-identical** to the reference interpreter on every
successful run: results, memory image, ``cycles``, ``instructions``,
elided/checked access counts, and all ``ProfileCounters``.  The one
documented divergence is *error timing*: the instruction-limit check and
counter updates happen per block instead of per instruction, so a run that
faults mid-block may report slightly different counter values than the
reference (never a different result or a missed error).

Subclass instrumentation still fires: ``Interpreter._compile_result_hook``
and ``_compile_access_hook`` let ``NarrowingInterpreter`` and
``SanitizingInterpreter`` inject per-value callbacks that the generated
code invokes at the exact program points where the reference engine's
``_execute`` overrides would run, and ``_trace_blocks`` compiles to an
``_on_block_transition`` call at every block entry.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List, Optional, Tuple

from ..ir import (
    Alloca,
    ArrayType,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    Constant,
    FCmp,
    FloatType,
    Function,
    GetElementPtr,
    GlobalVariable,
    ICmp,
    IntType,
    Load,
    Phi,
    PointerType,
    Return,
    Select,
    Store,
    UnaryOp,
    UndefValue,
    resource_class,
    sizeof,
)
from .cpu_model import instruction_cycles
from .interpreter import (
    ExecutionLimitExceeded,
    InterpreterError,
    _c_div,
    _c_rem,
)
from .memory import MemoryError_

_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")

_ICMP_OP = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_FCMP_OP = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">="}


def _f32(value: float) -> float:
    """Round a float to storable float32 precision (same as the reference)."""
    return _F32.unpack(_F32.pack(value))[0]


def _wrap_expr(expr: str, bits: int) -> str:
    """Source for two's-complement wrap of ``expr``; mirrors ``_wrap_int``."""
    if bits <= 1:
        return f"(({expr}) & 1)"
    mask = (1 << bits) - 1
    sign = 1 << (bits - 1)
    return f"(((({expr}) & {mask}) ^ {sign}) - {sign})"


class CompiledProgram:
    """All defined functions of a module compiled for one elision mode.

    Instances are created lazily by :meth:`Interpreter._program` and cached
    per ``elide`` flag; ``invoke`` runs one top-level call and flushes the
    hot counter cells back into the owning interpreter's attributes.
    """

    def __init__(self, interp, elide: bool):
        self.interp = interp
        self.elide = elide
        self.profile = interp.profile
        self.trace = interp._trace_blocks
        # Hot counter cells shared by all generated code: cycles,
        # instructions, (elided, checked) accesses, (budget, limit).
        self._cy = [0.0]
        self._ic = [0]
        self._ac = [0, 0]
        self._mx = [0, 0]
        self._nbind = 0
        memory = interp.memory
        self.ns: Dict = {
            "InterpreterError": InterpreterError,
            "ExecutionLimitExceeded": ExecutionLimitExceeded,
            "MemoryError_": MemoryError_,
            "_c_div": _c_div,
            "_c_rem": _c_rem,
            "_sqrt": math.sqrt,
            "_f32": _f32,
            "_PK4": _F32.pack,
            "_UPK4": _F32.unpack,
            "_UPF4": _F32.unpack_from,
            "_PKI4": _F32.pack_into,
            "_UPF8": _F64.unpack_from,
            "_PKI8": _F64.pack_into,
            "_ifb": int.from_bytes,
            # ``data`` is mutated in place and never reassigned, so it is
            # safe to capture once at compile time.
            "D": memory.data,
            "ALLOC": memory.allocate,
            "OBT": interp._on_block_transition,
            "CY": self._cy,
            "IC": self._ic,
            "AC": self._ac,
            "MX": self._mx,
        }
        self._mem_size = memory.size
        self._func_index: Dict[Function, int] = {}
        #: per function: (blocks, PB, PBI, PBC) for profile flushing
        self._block_flush: List[Tuple] = []
        #: per function: (edges, PE)
        self._edge_flush: List[Tuple] = []
        #: per function: (func, PF)
        self._entry_flush: List[Tuple] = []

        defined = list(interp.module.defined_functions())
        for fi, func in enumerate(defined):
            self._func_index[func] = fi
        lines: List[str] = []
        for fi, func in enumerate(defined):
            _FunctionCompiler(self, fi, func).emit(lines)
        source = "\n".join(lines)
        name = getattr(interp.module, "name", "module")
        code = compile(source, f"<repro-compiled:{name}:elide={elide}>", "exec")
        exec(code, self.ns)
        self._invokers = {func: self.ns[f"_f{fi}"] for func, fi in self._func_index.items()}
        self.source = source  # kept for debugging / docs examples

    # Namespace plumbing -------------------------------------------------------

    def bind(self, obj, prefix: str) -> str:
        """Bind a Python object into the generated code's namespace."""
        self._nbind += 1
        name = f"{prefix}{self._nbind}"
        self.ns[name] = obj
        return name

    # Execution ----------------------------------------------------------------

    def invoke(self, func: Function, args: List):
        """Run one top-level call of ``func`` and sync counters back."""
        fn = self._invokers.get(func)
        if fn is None:  # pragma: no cover - call_function rejects declarations
            raise InterpreterError(f"call to undefined function {func.name}")
        interp = self.interp
        self._mx[0] = interp.max_instructions - interp.instructions
        self._mx[1] = interp.max_instructions
        try:
            return fn(*args)
        finally:
            self._flush()

    def _flush(self) -> None:
        interp = self.interp
        interp.cycles += self._cy[0]
        self._cy[0] = 0.0
        interp.instructions += self._ic[0]
        self._ic[0] = 0
        interp.elided_accesses += self._ac[0]
        interp.checked_accesses += self._ac[1]
        self._ac[0] = self._ac[1] = 0
        if not self.profile:
            return
        counters = interp.counters
        block_count = counters.block_count
        block_insts = counters.block_instructions
        block_cycles = counters.block_cycles
        for blocks, pb, pbi, pbc in self._block_flush:
            for i, n in enumerate(pb):
                if n:
                    block = blocks[i]
                    block_count[block] = block_count.get(block, 0) + n
                    block_insts[block] = block_insts.get(block, 0) + pbi[i]
                    block_cycles[block] = block_cycles.get(block, 0.0) + pbc[i]
                    pb[i] = 0
                    pbi[i] = 0
                    pbc[i] = 0.0
        edge_count = counters.edge_count
        for edges, pe in self._edge_flush:
            for i, n in enumerate(pe):
                if n:
                    edge_count[edges[i]] = edge_count.get(edges[i], 0) + n
                    pe[i] = 0
        entries = counters.func_entry_count
        for func, pf in self._entry_flush:
            if pf[0]:
                entries[func] = entries.get(func, 0) + pf[0]
                pf[0] = 0


class _FunctionCompiler:
    """Translates one IR function into source appended to the program."""

    def __init__(self, program: CompiledProgram, fi: int, func: Function):
        self.program = program
        self.interp = program.interp
        self.fi = fi
        self.func = func
        self.elide = program.elide
        self.profile = program.profile
        self.trace = program.trace
        self._mem_size = program._mem_size
        self._tmp = 0
        # Slot allocation: arguments first, then every non-void instruction.
        self.slot: Dict = {}
        for arg in func.arguments:
            self.slot[arg] = len(self.slot)
        for inst in func.instructions():
            if not inst.type.is_void:
                self.slot[inst] = len(self.slot)
        self.block_index = {block: bi for bi, block in enumerate(func.blocks)}
        self.edges: List[Tuple] = []
        if self.trace:
            self.fobj = program.bind(func, "FOBJ")
            self.blk = {
                block: program.bind(block, "BLK") for block in func.blocks
            }
        if self.profile:
            nblocks = len(func.blocks)
            ns = program.ns
            ns[f"PB{fi}"] = [0] * nblocks
            ns[f"PBI{fi}"] = [0] * nblocks
            ns[f"PBC{fi}"] = [0.0] * nblocks
            ns[f"PF{fi}"] = [0]
            program._block_flush.append(
                (list(func.blocks), ns[f"PB{fi}"], ns[f"PBI{fi}"], ns[f"PBC{fi}"])
            )
            program._entry_flush.append((func, ns[f"PF{fi}"]))

    # Helpers ------------------------------------------------------------------

    def temp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def expr(self, value) -> str:
        """Source expression for an operand — the compile-time-specialized
        equivalent of the reference engine's ``_value``."""
        if isinstance(value, Constant):
            v = value.value
            if isinstance(v, float):
                # Bind floats as objects: repr round-trips but inf/nan don't.
                return self.program.bind(v, "K")
            return repr(v)
        if isinstance(value, GlobalVariable):
            return repr(self.interp.global_addresses[value])
        if isinstance(value, UndefValue):
            return "0"
        return f"S[{self.slot[value]}]"

    def dst(self, inst) -> Optional[str]:
        index = self.slot.get(inst)
        return None if index is None else f"S[{index}]"

    def edge_index(self, block, target) -> int:
        self.edges.append((block, target))
        return len(self.edges) - 1

    # Emission -----------------------------------------------------------------

    def emit(self, lines: List[str]) -> None:
        fi = self.fi
        func = self.func
        for bi, block in enumerate(func.blocks):
            self.emit_block(lines, bi, block)
        if self.profile and self.edges:
            ns = self.program.ns
            ns[f"PE{fi}"] = [0] * len(self.edges)
            self.program._edge_flush.append((list(self.edges), ns[f"PE{fi}"]))
        # Invoker: exact arity, fresh slot list, direct-threaded driver.
        params = ", ".join(f"_a{i}" for i in range(len(func.arguments)))
        lines.append(f"def _f{fi}({params}):")
        lines.append(f"    S = [0] * {len(self.slot)}")
        for i in range(len(func.arguments)):
            lines.append(f"    S[{i}] = _a{i}")
        lines.append("    X = [None, None]")
        if self.profile:
            lines.append(f"    PF{fi}[0] += 1")
        entry_bi = self.block_index[func.entry]
        lines.append(f"    fn = _f{fi}_b{entry_bi}")
        lines.append("    while fn is not None:")
        lines.append("        fn = fn(S, X)")
        lines.append("    return X[0]")
        lines.append("")

    def emit_block(self, lines: List[str], bi: int, block) -> None:
        fi = self.fi
        body: List[str] = []
        instructions = block.instructions
        # Leading phis are written by predecessors' jump sites; everything
        # from the first non-phi on executes here.
        index = 0
        while index < len(instructions) and isinstance(instructions[index], Phi):
            index += 1
        tail = instructions[index:]
        n_insts = len(tail)
        has_call = any(isinstance(inst, Call) for inst in tail)
        cycle_sum = sum(
            instruction_cycles(resource_class(inst)) for inst in tail
        )

        if self.trace:
            body.append(f"OBT({self.fobj}, X[1], {self.blk[block]})")
        if self.profile:
            body.append(f"PB{fi}[{bi}] += 1")
            if n_insts:
                body.append(f"PBI{fi}[{bi}] += {n_insts}")
        if not instructions:
            body.append(
                f"raise InterpreterError({f'block {block.name} is empty'!r})"
            )
            self._write(lines, fi, bi, body)
            return
        if n_insts:
            body.append(f"IC[0] += {n_insts}")
            body.append(
                "if IC[0] > MX[0]: raise ExecutionLimitExceeded("
                '"exceeded %d instructions" % MX[1])'
            )
        if self.profile and has_call:
            body.append("_cyin = CY[0]")
        if cycle_sum:
            body.append(f"CY[0] += {cycle_sum!r}")

        terminated = False
        for inst in tail:
            if isinstance(inst, Branch):
                self._emit_goto(body, bi, block, inst.target, has_call)
                terminated = True
                break
            if isinstance(inst, CondBranch):
                body.append(f"if {self.expr(inst.condition)}:")
                true_exit: List[str] = []
                self._emit_goto(true_exit, bi, block, inst.true_target, has_call)
                body.extend("    " + line for line in true_exit)
                body.append("else:")
                false_exit: List[str] = []
                self._emit_goto(false_exit, bi, block, inst.false_target, has_call)
                body.extend("    " + line for line in false_exit)
                terminated = True
                break
            if isinstance(inst, Return):
                value = "None" if inst.value is None else self.expr(inst.value)
                body.append(f"X[0] = {value}")
                self._emit_block_cycles(body, bi, has_call)
                body.append("return None")
                terminated = True
                break
            self.emit_inst(body, inst)
        if not terminated:
            self._emit_block_cycles(body, bi, has_call)
            body.append(
                f"raise InterpreterError({f'block {block.name} fell through'!r})"
            )
        self._write(lines, fi, bi, body)

    def _write(self, lines: List[str], fi: int, bi: int, body: List[str]) -> None:
        lines.append(f"def _f{fi}_b{bi}(S, X):")
        for line in body:
            lines.append("    " + line)
        lines.append("")

    def _emit_block_cycles(self, body: List[str], bi: int, has_call: bool) -> None:
        if not self.profile:
            return
        block = self.func.blocks[bi]
        tail_cycles = sum(
            instruction_cycles(resource_class(inst))
            for inst in block.instructions
            if not isinstance(inst, Phi)
        )
        if has_call:
            body.append(f"PBC{self.fi}[{bi}] += CY[0] - _cyin")
        else:
            body.append(f"PBC{self.fi}[{bi}] += {tail_cycles!r}")

    def _emit_goto(
        self, body: List[str], bi: int, block, target, has_call: bool
    ) -> None:
        """Jump to ``target``: edge-specific phi copies, profile epilogue,
        trace bookkeeping, then return the target's block function."""
        phis = []
        for inst in target.instructions:
            if not isinstance(inst, Phi):
                break
            phis.append(inst)
        if len(phis) == 1:
            phi = phis[0]
            body.append(
                f"S[{self.slot[phi]}] = {self.expr(phi.incoming_for(block))}"
            )
        elif phis:
            # Parallel-copy semantics: read every incoming value before
            # writing any phi slot (phis may reference each other).
            temps = []
            for phi in phis:
                t = self.temp()
                temps.append(t)
                body.append(f"{t} = {self.expr(phi.incoming_for(block))}")
            for phi, t in zip(phis, temps):
                body.append(f"S[{self.slot[phi]}] = {t}")
        self._emit_block_cycles(body, bi, has_call)
        if self.profile:
            ei = self.edge_index(block, target)
            body.append(f"PE{self.fi}[{ei}] += 1")
        if self.trace:
            body.append(f"X[1] = {self.blk[block]}")
        body.append(f"return _f{self.fi}_b{self.block_index[target]}")

    # Per-instruction code ------------------------------------------------------

    def emit_inst(self, body: List[str], inst) -> None:
        if isinstance(inst, BinaryOp):
            self._emit_binary(body, inst)
        elif isinstance(inst, Load):
            self._emit_load(body, inst)
        elif isinstance(inst, Store):
            self._emit_store(body, inst)
            return  # void: no result hook
        elif isinstance(inst, GetElementPtr):
            self._emit_gep(body, inst)
        elif isinstance(inst, ICmp):
            op = _ICMP_OP[inst.predicate]
            lhs, rhs = self.expr(inst.operands[0]), self.expr(inst.operands[1])
            body.append(f"{self.dst(inst)} = 1 if {lhs} {op} {rhs} else 0")
        elif isinstance(inst, FCmp):
            op = _FCMP_OP[inst.predicate]
            lhs, rhs = self.expr(inst.operands[0]), self.expr(inst.operands[1])
            body.append(f"{self.dst(inst)} = 1 if {lhs} {op} {rhs} else 0")
        elif isinstance(inst, Select):
            cond, a, b = (self.expr(op) for op in inst.operands)
            body.append(f"{self.dst(inst)} = {a} if {cond} else {b}")
        elif isinstance(inst, Cast):
            self._emit_cast(body, inst)
        elif isinstance(inst, UnaryOp):
            self._emit_unary(body, inst)
        elif isinstance(inst, Alloca):
            ty = self.program.bind(inst.allocated_type, "TY")
            body.append(f"{self.dst(inst)} = ALLOC({ty})")
        elif isinstance(inst, Call):
            self._emit_call(body, inst)
        else:
            body.append(
                f"raise InterpreterError({f'cannot execute {inst.opcode}'!r})"
            )
            return
        self._emit_result_hook(body, inst)

    def _emit_result_hook(self, body: List[str], inst) -> None:
        dst = self.dst(inst)
        if dst is None:
            return
        hook = self.interp._compile_result_hook(inst)
        if hook is None:
            return
        name = self.program.bind(hook, "H")
        operands = "".join(f", {self.expr(op)}" for op in inst.operands)
        body.append(f"{dst} = {name}({dst}{operands})")

    def _emit_binary(self, body: List[str], inst) -> None:
        op = inst.opcode
        lhs, rhs = self.expr(inst.lhs), self.expr(inst.rhs)
        dst = self.dst(inst)
        bits = inst.type.bits
        if op in ("fadd", "fsub", "fmul", "fdiv"):
            if op == "fdiv":
                t = self.temp()
                body.append(f"{t} = {rhs}")
                if not (isinstance(inst.rhs, Constant) and inst.rhs.value != 0):
                    body.append(
                        f"if {t} == 0: raise InterpreterError("
                        '"float division by zero")'
                    )
                e = f"{lhs} / {t}"
            else:
                pyop = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
                e = f"{lhs} {pyop} {rhs}"
            if bits == 32:
                body.append(f"{dst} = _UPK4(_PK4({e}))[0]")
            else:
                body.append(f"{dst} = {e}")
            return
        if op in ("add", "sub", "mul", "and", "or", "xor"):
            pyop = {"add": "+", "sub": "-", "mul": "*", "and": "&",
                    "or": "|", "xor": "^"}[op]
            body.append(f"{dst} = {_wrap_expr(f'{lhs} {pyop} {rhs}', bits)}")
            return
        if op in ("div", "rem"):
            fn = "_c_div" if op == "div" else "_c_rem"
            kind = "division" if op == "div" else "remainder"
            t = self.temp()
            body.append(f"{t} = {rhs}")
            if not (isinstance(inst.rhs, Constant) and inst.rhs.value != 0):
                body.append(
                    f"if {t} == 0: raise InterpreterError("
                    f'"integer {kind} by zero")'
                )
            body.append(f"{dst} = {_wrap_expr(f'{fn}({lhs}, {t})', bits)}")
            return
        # shl / shr — trap on out-of-range amounts (matches the reference).
        pyop = "<<" if op == "shl" else ">>"
        if isinstance(inst.rhs, Constant):
            amount = inst.rhs.value
            if 0 <= amount < bits:
                body.append(f"{dst} = {_wrap_expr(f'{lhs} {pyop} {amount}', bits)}")
            else:
                body.append(
                    "raise InterpreterError("
                    f"{f'{op} amount {amount} out of range for i{bits}'!r})"
                )
            return
        t = self.temp()
        body.append(f"{t} = {rhs}")
        body.append(
            f"if {t} < 0 or {t} >= {bits}: raise InterpreterError("
            f'"{op} amount %d out of range for i{bits}" % {t})'
        )
        body.append(f"{dst} = {_wrap_expr(f'{lhs} {pyop} {t}', bits)}")

    def _emit_access_prologue(self, body: List[str], inst, nbytes: int) -> str:
        """Address temp + access hook + bounds check/elision accounting."""
        t = self.temp()
        body.append(f"{t} = {self.expr(inst.pointer)}")
        hook = self.interp._compile_access_hook(inst)
        if hook is not None:
            name = self.program.bind(hook, "AH")
            body.append(f"{name}({t})")
        if self.elide and inst in self.interp._proven:
            body.append("AC[0] += 1")
        else:
            body.append("AC[1] += 1")
            body.append(
                f"if {t} < 64 or {t} + {nbytes} > {self._mem_size}: "
                'raise MemoryError_("access at %d (%d bytes) out of range"'
                f" % ({t}, {nbytes}))"
            )
        return t

    def _emit_load(self, body: List[str], inst) -> None:
        ty = inst.type
        dst = self.dst(inst)
        if isinstance(ty, IntType):
            nbytes = max(1, (ty.bits + 7) // 8)
            addr = self._emit_access_prologue(body, inst, nbytes)
            raw = self.temp()
            body.append(f'{raw} = _ifb(D[{addr}:{addr} + {nbytes}], "little")')
            if ty.bits > 1:
                sign = 1 << (ty.bits - 1)
                body.append(
                    f"{dst} = ({raw} & {sign - 1}) - ({raw} & {sign})"
                )
            else:
                body.append(f"{dst} = {raw} & 1")
        elif isinstance(ty, FloatType):
            nbytes = ty.bits // 8
            addr = self._emit_access_prologue(body, inst, nbytes)
            fn = "_UPF4" if ty.bits == 32 else "_UPF8"
            body.append(f"{dst} = {fn}(D, {addr})[0]")
        elif isinstance(ty, PointerType):
            addr = self._emit_access_prologue(body, inst, 8)
            body.append(f'{dst} = _ifb(D[{addr}:{addr} + 8], "little")')
        else:  # pragma: no cover - type system forbids other loads
            body.append(
                f"raise MemoryError_({f'cannot load type {ty}'!r})"
            )

    def _emit_store(self, body: List[str], inst) -> None:
        ty = inst.value.type
        value = self.expr(inst.value)
        if isinstance(ty, IntType):
            nbytes = max(1, (ty.bits + 7) // 8)
            addr = self._emit_access_prologue(body, inst, nbytes)
            mask = (1 << (8 * nbytes)) - 1
            body.append(
                f"D[{addr}:{addr} + {nbytes}] = "
                f'(int({value}) & {mask}).to_bytes({nbytes}, "little")'
            )
        elif isinstance(ty, FloatType):
            nbytes = ty.bits // 8
            addr = self._emit_access_prologue(body, inst, nbytes)
            fn = "_PKI4" if ty.bits == 32 else "_PKI8"
            body.append(f"{fn}(D, {addr}, float({value}))")
        elif isinstance(ty, PointerType):
            addr = self._emit_access_prologue(body, inst, 8)
            mask = (1 << 64) - 1
            body.append(
                f"D[{addr}:{addr} + 8] = "
                f'(int({value}) & {mask}).to_bytes(8, "little")'
            )
        else:  # pragma: no cover - type system forbids other stores
            body.append(
                f"raise MemoryError_({f'cannot store type {ty}'!r})"
            )

    def _emit_gep(self, body: List[str], inst) -> None:
        terms = [self.expr(inst.base)]
        offset = 0
        ty = inst.base.type.pointee
        for level, index in enumerate(inst.indices):
            if level > 0:
                if not isinstance(ty, ArrayType):
                    body.append(
                        'raise InterpreterError("gep descends into non-array")'
                    )
                    return
                ty = ty.element
            size = sizeof(ty)
            if isinstance(index, Constant):
                offset += index.value * size
            elif size == 1:
                terms.append(self.expr(index))
            else:
                terms.append(f"{self.expr(index)} * {size}")
        if offset:
            terms.append(repr(offset))
        body.append(f"{self.dst(inst)} = {' + '.join(terms)}")

    def _emit_cast(self, body: List[str], inst) -> None:
        op = inst.opcode
        value = self.expr(inst.operands[0])
        dst = self.dst(inst)
        bits = inst.type.bits
        if op == "sitofp":
            e = f"float({value})"
            if bits == 32:
                e = f"_UPK4(_PK4({e}))[0]"
            body.append(f"{dst} = {e}")
        elif op == "fptosi":
            body.append(f"{dst} = {_wrap_expr(f'int({value})', bits)}")
        elif op == "zext":
            src_mask = (1 << inst.operands[0].type.bits) - 1
            t = self.temp()
            body.append(f"{t} = {value}")
            body.append(f"if {t} < 0: {t} &= {src_mask}")
            body.append(f"{dst} = {_wrap_expr(t, bits)}")
        elif op in ("sext", "trunc"):
            body.append(f"{dst} = {_wrap_expr(value, bits)}")
        elif op == "fptrunc":
            body.append(f"{dst} = _UPK4(_PK4({value}))[0]")
        else:  # fpext
            body.append(f"{dst} = {value}")

    def _emit_unary(self, body: List[str], inst) -> None:
        op = inst.opcode
        value = self.expr(inst.operands[0])
        dst = self.dst(inst)
        bits = inst.type.bits
        if op == "fneg":
            body.append(f"{dst} = -({value})")
        elif op == "fsqrt":
            t = self.temp()
            body.append(f"{t} = {value}")
            body.append(
                f"if {t} < 0: raise InterpreterError("
                '"fsqrt of a negative value")'
            )
            e = f"_sqrt({t})"
            if bits == 32:
                e = f"_UPK4(_PK4({e}))[0]"
            body.append(f"{dst} = {e}")
        elif op == "fabs":
            body.append(f"{dst} = abs({value})")
        elif op == "neg":
            body.append(f"{dst} = {_wrap_expr(f'-({value})', bits)}")
        else:  # not
            body.append(f"{dst} = {_wrap_expr(f'~({value})', bits)}")

    def _emit_call(self, body: List[str], inst) -> None:
        callee = inst.callee
        if callee.is_declaration:
            body.append(
                "raise InterpreterError("
                f"{f'call to undefined function {callee.name}'!r})"
            )
            return
        fi = self.program._func_index[callee]
        args = ", ".join(self.expr(op) for op in inst.operands)
        dst = self.dst(inst)
        if dst is None:
            body.append(f"_f{fi}({args})")
        else:
            body.append(f"{dst} = _f{fi}({args})")
