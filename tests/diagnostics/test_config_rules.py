"""One firing and one clean case for every config/merge rule (CF001–CF005)."""

from types import SimpleNamespace

import pytest

from repro.diagnostics import Severity
from repro.diagnostics.config_rules import (
    ConfigRuleEnv,
    check_merge_signatures,
    check_pipelined_calls,
    check_scratchpad_capacity,
    check_unroll_distance,
    check_unroll_legality,
    check_unroll_trip_count,
    config_diagnostics,
    config_errors,
    merge_pair_diagnostics,
)
from repro.frontend.lowering import compile_source
from repro.interp.profiler import profile_module
from repro.ir import Call, Load
from repro.model.config import AcceleratorConfig, LoopPlan
from repro.model.estimator import AcceleratorModel
from repro.model.interfaces import (
    InterfaceAssignment,
    InterfaceKind,
    InterfacePlan,
)


SOURCE = """
int A[64]; int B[64]; int C[64];
void prefix(int n) {
  for (int i = 1; i < n; i = i + 1) A[i] = A[i-1] + A[i];
}
void saxpy(int n, int k) {
  for (int i = 0; i < n; i = i + 1) B[i] = k * A[i];
}
void siv2(int n) {
  for (int i = 2; i < n; i = i + 1) C[i] = C[i-2] + 1;
}
int main() {
  for (int i = 0; i < 64; i = i + 1) { A[i] = i; C[i] = i; }
  for (int r = 0; r < 4; r = r + 1) { prefix(64); saxpy(64, 3); siv2(64); }
  return B[10];
}
"""


@pytest.fixture(scope="module")
def setup():
    module = compile_source(SOURCE, "cfg")
    profile = profile_module(module, entry="main")
    model = AcceleratorModel(module, profile)
    return SimpleNamespace(module=module, profile=profile, model=model)


def region_of(setup, func_name):
    from repro.analysis.wpst import WPST

    wpst = WPST(setup.module)
    for node in wpst.region_vertices():
        if node.region is not None and node.region.function.name == func_name:
            return node.region
    raise AssertionError(f"no region in {func_name}")


def loop_of(setup, func_name):
    ctx = setup.model.context(setup.module.get_function(func_name))
    return ctx.loop_info.loops[0]


def env_for(setup, func_name, **kwargs):
    ctx = setup.model.context(setup.module.get_function(func_name))
    kwargs.setdefault("profile", setup.profile)
    return ConfigRuleEnv(memdep=ctx.memdep, loop_info=ctx.loop_info, **kwargs)


def config_with_plan(setup, func_name, unroll=1, pipelined=False):
    loop = loop_of(setup, func_name)
    return AcceleratorConfig(
        region=region_of(setup, func_name),
        loop_plans={loop: LoopPlan(loop=loop, unroll=unroll,
                                   pipelined=pipelined)},
    )


class TestUnrollLegality:
    def test_fires_on_dependent_loop(self, setup):
        config = config_with_plan(setup, "prefix", unroll=4)
        found = list(check_unroll_legality(config, env_for(setup, "prefix")))
        assert [d.code for d in found] == ["CF001"]
        assert found[0].severity is Severity.ERROR

    def test_clean_on_independent_loop(self, setup):
        config = config_with_plan(setup, "saxpy", unroll=4)
        assert list(check_unroll_legality(config, env_for(setup, "saxpy"))) == []


class TestUnrollDistance:
    def test_fires_when_factor_exceeds_distance(self, setup):
        # siv2 carries C[i] <- C[i-2]: proven distance 2, so x4 races.
        config = config_with_plan(setup, "siv2", unroll=4)
        found = list(check_unroll_distance(config, env_for(setup, "siv2")))
        assert [d.code for d in found] == ["IR010"]
        assert found[0].severity is Severity.ERROR
        assert "distance 2" in found[0].message

    def test_clean_within_proven_distance(self, setup):
        config = config_with_plan(setup, "siv2", unroll=2)
        found = list(check_unroll_distance(config, env_for(setup, "siv2")))
        assert not [d for d in found if d.code == "IR010"]
        assert found == []


class TestUnrollTripCount:
    def test_fires_when_factor_exceeds_trips(self, setup):
        config = config_with_plan(setup, "saxpy", unroll=128)
        found = list(check_unroll_trip_count(config, env_for(setup, "saxpy")))
        assert [d.code for d in found] == ["CF002"]

    def test_clean_within_trips(self, setup):
        config = config_with_plan(setup, "saxpy", unroll=4)
        assert list(
            check_unroll_trip_count(config, env_for(setup, "saxpy"))
        ) == []


class TestScratchpadCapacity:
    def _config(self, setup, spad_bytes):
        func = setup.module.get_function("saxpy")
        load = next(
            inst for block in func.blocks for inst in block.instructions
            if isinstance(inst, Load)
        )
        plan = InterfacePlan()
        plan.assign(InterfaceAssignment(
            inst=load, kind=InterfaceKind.SCRATCHPAD,
            spad_group=object(), spad_bytes=spad_bytes,
        ))
        return AcceleratorConfig(region=region_of(setup, "saxpy"), plan=plan)

    def test_fires_when_footprint_exceeds_capacity(self, setup):
        config = self._config(setup, spad_bytes=1 << 20)
        found = list(check_scratchpad_capacity(
            config, env_for(setup, "saxpy", max_spad_bytes=1 << 16)
        ))
        assert [d.code for d in found] == ["CF003"]

    def test_clean_within_capacity(self, setup):
        config = self._config(setup, spad_bytes=256)
        found = list(check_scratchpad_capacity(
            config, env_for(setup, "saxpy", max_spad_bytes=1 << 16)
        ))
        assert not [d for d in found if d.code == "CF003"]
        assert found == []


class TestPipelinedCalls:
    def _call_loop_config(self, setup, pipelined):
        func = setup.module.get_function("main")
        ctx = setup.model.context(func)
        loop = next(
            l for l in ctx.loop_info.loops
            if any(isinstance(i, Call)
                   for b in l.blocks for i in b.instructions)
        )
        return AcceleratorConfig(
            region=region_of(setup, "main"),
            loop_plans={loop: LoopPlan(loop=loop, pipelined=pipelined)},
        )

    def test_fires_on_pipelined_loop_with_call(self, setup):
        config = self._call_loop_config(setup, pipelined=True)
        found = list(check_pipelined_calls(config, env_for(setup, "main")))
        assert found and all(d.code == "CF005" for d in found)

    def test_clean_when_not_pipelined(self, setup):
        config = self._call_loop_config(setup, pipelined=False)
        found = list(check_pipelined_calls(config, env_for(setup, "main")))
        assert not [d for d in found if d.code == "CF005"]
        assert found == []


def fake_dfg(*ops):
    return SimpleNamespace(nodes=[
        SimpleNamespace(resource=resource, bits=bits) for resource, bits in ops
    ])


class TestMergeSignatures:
    def test_fires_on_disjoint_signatures(self):
        dfg_a = fake_dfg(("int_add", 32), ("int_mul", 32))
        dfg_b = fake_dfg(("fp_add", 32), ("fp_mul", 32))
        found = merge_pair_diagnostics("acc0", dfg_a, "acc1", dfg_b)
        assert [d.code for d in found] == ["CF004"]

    def test_clean_on_shared_signatures(self):
        dfg_a = fake_dfg(("int_add", 32), ("int_mul", 32))
        dfg_b = fake_dfg(("int_add", 32), ("fp_mul", 32))
        assert merge_pair_diagnostics("acc0", dfg_a, "acc1", dfg_b) == []

    def test_direct_checker_matches_helper(self):
        dfg_a = fake_dfg(("int_add", 32))
        dfg_b = fake_dfg(("fp_add", 32))
        assert len(list(check_merge_signatures("a", dfg_a, "b", dfg_b))) == 1


class TestHelpers:
    def test_config_diagnostics_runs_all_config_rules(self, setup):
        config = config_with_plan(setup, "prefix", unroll=4)
        found = config_diagnostics(config, env_for(setup, "prefix"))
        assert any(d.code == "CF001" for d in found)

    def test_config_errors_filters_severity(self, setup):
        # unroll > trip count is only a warning; not a rejection reason.
        config = config_with_plan(setup, "saxpy", unroll=128)
        found = config_diagnostics(config, env_for(setup, "saxpy"))
        assert any(d.code == "CF002" for d in found)
        assert config_errors(config, env_for(setup, "saxpy")) == []
