"""Unit tests for the mini-C parser."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse


def parse_stmt(body: str) -> ast.Stmt:
    program = parse(f"void f() {{ {body} }}")
    return program.functions[0].body.statements[0]


def parse_expr(expr: str) -> ast.Expr:
    stmt = parse_stmt(f"x = {expr};")
    assert isinstance(stmt, ast.AssignStmt)
    return stmt.value


class TestTopLevel:
    def test_globals_and_functions(self):
        program = parse("int g; float A[4][5]; int main() { return 0; }")
        assert [d.name for d in program.globals] == ["g", "A"]
        assert program.globals[1].type_spec.array_dims == [4, 5]
        assert program.functions[0].name == "main"

    def test_params_with_array_decay(self):
        program = parse("void f(float A[8][16], int n, float *p) {}")
        params = program.functions[0].params
        assert params[0].type_spec.array_dims == [8, 16]
        assert params[2].type_spec.pointer_depth == 1

    def test_void_param_list(self):
        program = parse("int f(void) { return 1; }")
        assert program.functions[0].params == []

    def test_static_and_const_skipped(self):
        program = parse("static const int g; void f(const int n) {}")
        assert program.globals[0].name == "g"


class TestStatements:
    def test_declaration_with_init(self):
        stmt = parse_stmt("int x = 1 + 2;")
        assert isinstance(stmt, ast.DeclStmt)
        assert isinstance(stmt.init, ast.BinaryExpr)

    def test_if_else(self):
        stmt = parse_stmt("if (a < b) x = 1; else x = 2;")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.else_body is None
        assert stmt.then_body.else_body is not None

    def test_for_loop_parts(self):
        stmt = parse_stmt("for (int i = 0; i < n; i++) x += i;")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.DeclStmt)
        assert isinstance(stmt.step, ast.AssignStmt)

    def test_for_with_empty_parts(self):
        stmt = parse_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_break_continue(self):
        stmt = parse_stmt("while (1) { if (x) break; continue; }")
        assert isinstance(stmt, ast.WhileStmt)
        inner = stmt.body.statements
        assert isinstance(inner[0].then_body, ast.BreakStmt)
        assert isinstance(inner[1], ast.ContinueStmt)

    def test_label_attaches_to_loop(self):
        stmt = parse_stmt("hot: for (int i = 0; i < 4; i++) x += i;")
        assert stmt.label == "hot"

    def test_label_vs_ternary(self):
        # `a ? b : c` must not parse `b :` as a label.
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, ast.ConditionalExpr)

    def test_compound_assignments(self):
        for op, expected in [("+=", "+"), ("-=", "-"), ("*=", "*"), ("/=", "/"), ("%=", "%")]:
            stmt = parse_stmt(f"x {op} 2;")
            assert isinstance(stmt, ast.AssignStmt)
            assert stmt.op == expected

    def test_increment_decrement(self):
        inc = parse_stmt("x++;")
        dec = parse_stmt("x--;")
        assert inc.op == "+" and isinstance(inc.value, ast.IntLiteral)
        assert dec.op == "-"

    def test_empty_statement(self):
        stmt = parse_stmt(";")
        assert isinstance(stmt, ast.BlockStmt) and not stmt.statements


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_precedence_cmp_over_logic(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.lhs.op == "<"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.lhs.op == "-"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_unary_ops(self):
        assert parse_expr("-x").op == "-"
        assert parse_expr("!x").op == "!"
        assert parse_expr("~x").op == "~"
        # unary plus is a no-op
        assert isinstance(parse_expr("+x"), ast.NameRef)

    def test_cast_expression(self):
        expr = parse_expr("(float)n")
        assert isinstance(expr, ast.CastExpr)
        assert expr.target.base == "float"

    def test_parenthesized_name_is_not_cast(self):
        expr = parse_expr("(n)")
        assert isinstance(expr, ast.NameRef)

    def test_chained_subscripts(self):
        expr = parse_expr("A[i][j + 1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_with_args(self):
        expr = parse_expr("f(1, x + 2)")
        assert isinstance(expr, ast.CallExpr)
        assert len(expr.args) == 2

    def test_ternary_right_associative(self):
        expr = parse_expr("a ? 1 : b ? 2 : 3")
        assert isinstance(expr.false_expr, ast.ConditionalExpr)

    def test_shift_and_bitwise(self):
        expr = parse_expr("a >> 2 & 255")
        assert expr.op == "&"
        assert expr.lhs.op == ">>"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f() { x = 1 }")

    def test_unclosed_block(self):
        with pytest.raises(ParseError):
            parse("void f() { x = 1;")

    def test_bad_array_dim(self):
        with pytest.raises(ParseError):
            parse("int A[n];")

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse("void f() { x = ; }")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as err:
            parse("void f() {\n  x = ;\n}")
        assert "2:" in str(err.value)
