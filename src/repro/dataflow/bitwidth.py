"""Bidirectional bitwidth analysis: known-bits ∧ demanded-bits (HLS narrowing).

Two cooperating analyses prove, per integer SSA value, how many datapath
bits an operator actually needs — the classic HLS bitwidth-minimization
pass (Calyx and HIR treat per-operator width as a first-class IR property
for the same reason):

* **Known bits** (forward, a :class:`~repro.dataflow.framework.ForwardDataflow`
  client): per value a :class:`KnownBits` triple of known-zero / known-one
  masks over the value's *unsigned* two's-complement representation.
  Transfer functions mirror the reference interpreter exactly (wrapping
  arithmetic, ``amount & 63`` shifts, arithmetic ``shr``, the ``i1``
  unsigned special case) and are cross-refined with the interval analysis:
  a value proven in ``[0, 100]`` gains 25 known-leading-zero bits at i32.

* **Demanded bits** (backward, an SSA-graph fixpoint): which result bits
  each operator must actually produce.  Full demand is rooted at stores,
  branch conditions, call arguments, return values and address (gep index)
  computations, then propagated through operands (``add`` needs operand
  bits only up to the highest demanded sum bit, ``shl c`` shifts the
  demand down, ...).  Masks only ever grow, so the fixpoint is loop-safe.

Their meet is ``proven_width(v) ≤ v.type.bits``: the narrowest datapath
that provably reproduces every observable behavior.  Consumers: the HLS
area model (``DFGNode`` width overrides), FU merging (max-width matching),
lint rules IR009/AN005, the sanitizer (runtime mask checks) and the
``repro bitwidth`` CLI report.  See ``docs/bitwidth.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (
    Argument,
    BasicBlock,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Constant,
    FCmp,
    Function,
    GetElementPtr,
    ICmp,
    Instruction,
    Module,
    Phi,
    Return,
    Select,
    Store,
    UnaryOp,
    Value,
)
from ..analysis.loops import LoopInfo
from .framework import ForwardDataflow
from .interval import Interval, IntervalAnalysis, ModuleIntervalAnalysis


def _mask(bits: int) -> int:
    return (1 << bits) - 1


def _to_signed(u: int, bits: int) -> int:
    """Unsigned representation → interpreter value (two's complement;
    ``i1`` stays unsigned, matching ``_wrap_int``)."""
    u &= _mask(bits)
    if bits <= 1:
        return u
    sign = 1 << (bits - 1)
    return (u & (sign - 1)) - (u & sign)


class KnownBits:
    """Known-zero / known-one masks over an N-bit unsigned representation.

    Invariant: ``zeros & ones == 0`` and both masks fit in ``bits``.  A bit
    set in neither mask is unknown; ⊤ is both masks empty.  Soundness
    contract (checked at runtime by the sanitizer): for every concrete
    value ``v`` the analysis claims this for, ``u = v & mask`` satisfies
    ``u & zeros == 0`` and ``u & ones == ones``.
    """

    __slots__ = ("bits", "zeros", "ones")

    def __init__(self, bits: int, zeros: int = 0, ones: int = 0):
        m = _mask(bits)
        self.bits = bits
        self.zeros = zeros & m
        self.ones = ones & m

    # Constructors -----------------------------------------------------------

    @staticmethod
    def top(bits: int) -> "KnownBits":
        return KnownBits(bits)

    @staticmethod
    def constant(value: int, bits: int) -> "KnownBits":
        u = value & _mask(bits)
        return KnownBits(bits, ~u, u)

    @staticmethod
    def from_interval(interval: Interval, bits: int) -> "KnownBits":
        """Leading bits pinned by a signed range: when ``[lo, hi]`` stays on
        one side of the sign wrap, the unsigned images of ``lo`` and ``hi``
        share their leading bits and those bits are known (``[0, 100]`` at
        i32 → 25 known-zero leading bits; ``hi < 0`` pins leading ones)."""
        iv = interval.intersect(Interval.of_type(bits))
        if iv.is_bottom or iv.lo is None or iv.hi is None:
            return KnownBits.top(bits)
        lo, hi = iv.lo, iv.hi
        if not (lo >= 0 or hi < 0):
            return KnownBits.top(bits)  # range crosses the sign wrap
        m = _mask(bits)
        ulo, uhi = lo & m, hi & m
        diff = ulo ^ uhi
        known_high = m & ~_mask(diff.bit_length())
        return KnownBits(bits, ~ulo & known_high, ulo & known_high)

    # Bit queries ------------------------------------------------------------

    def _bit(self, i: int) -> Optional[int]:
        if (self.zeros >> i) & 1:
            return 0
        if (self.ones >> i) & 1:
            return 1
        return None

    @property
    def known_mask(self) -> int:
        return self.zeros | self.ones

    def is_constant(self) -> bool:
        return self.known_mask == _mask(self.bits)

    def constant_value(self) -> Optional[int]:
        """The concrete (signed) value when every bit is known."""
        if not self.is_constant():
            return None
        return _to_signed(self.ones, self.bits)

    def check(self, value: int) -> bool:
        """Does a concrete interpreter value satisfy the claimed masks?"""
        u = value & _mask(self.bits)
        return (u & self.zeros) == 0 and (u & self.ones) == self.ones

    def leading_zeros(self) -> int:
        count = 0
        for i in range(self.bits - 1, -1, -1):
            if not (self.zeros >> i) & 1:
                break
            count += 1
        return count

    def leading_ones(self) -> int:
        count = 0
        for i in range(self.bits - 1, -1, -1):
            if not (self.ones >> i) & 1:
                break
            count += 1
        return count

    def trailing_zeros(self) -> int:
        count = 0
        for i in range(self.bits):
            if not (self.zeros >> i) & 1:
                break
            count += 1
        return count

    def significant_bits(self) -> int:
        """Datapath bits needed to carry the value: leading known zeros are
        free (zero-extend restores them); N leading known ones collapse to
        one replicated sign bit."""
        lz = self.leading_zeros()
        if lz:
            return max(1, self.bits - lz)
        lo = self.leading_ones()
        if lo:
            return max(1, self.bits - lo + 1)
        return self.bits

    # Lattice ----------------------------------------------------------------

    def join(self, other: "KnownBits") -> "KnownBits":
        """Bits known identical on both paths."""
        return KnownBits(
            self.bits, self.zeros & other.zeros, self.ones & other.ones
        )

    def refine(self, other: "KnownBits") -> "KnownBits":
        """Meet of two sound facts about the same value; contradicting bits
        (possible only at unreachable code) are conservatively dropped."""
        zeros = self.zeros | other.zeros
        ones = self.ones | other.ones
        conflict = zeros & ones
        return KnownBits(self.bits, zeros & ~conflict, ones & ~conflict)

    # Transfer functions (mirror repro.interp.interpreter semantics) ---------

    def band(self, other: "KnownBits") -> "KnownBits":
        return KnownBits(
            self.bits, self.zeros | other.zeros, self.ones & other.ones
        )

    def bor(self, other: "KnownBits") -> "KnownBits":
        return KnownBits(
            self.bits, self.zeros & other.zeros, self.ones | other.ones
        )

    def bxor(self, other: "KnownBits") -> "KnownBits":
        known = self.known_mask & other.known_mask
        value = (self.ones ^ other.ones) & known
        return KnownBits(self.bits, known & ~value, value)

    def bnot(self) -> "KnownBits":
        return KnownBits(self.bits, self.ones, self.zeros)

    @staticmethod
    def _carry_add(a: "KnownBits", b: "KnownBits", carry: int) -> "KnownBits":
        """Exact three-valued ripple-carry addition (≤64 bits × ≤8 combos)."""
        bits = a.bits
        zeros = ones = 0
        carries = {carry}
        for i in range(bits):
            abit, bbit = a._bit(i), b._bit(i)
            sums = set()
            nxt = set()
            for av in (0, 1) if abit is None else (abit,):
                for bv in (0, 1) if bbit is None else (bbit,):
                    for cv in carries:
                        total = av + bv + cv
                        sums.add(total & 1)
                        nxt.add(total >> 1)
            if sums == {0}:
                zeros |= 1 << i
            elif sums == {1}:
                ones |= 1 << i
            carries = nxt
        return KnownBits(bits, zeros, ones)

    def add(self, other: "KnownBits") -> "KnownBits":
        return KnownBits._carry_add(self, other, 0)

    def sub(self, other: "KnownBits") -> "KnownBits":
        return KnownBits._carry_add(self, other.bnot(), 1)

    def neg(self) -> "KnownBits":
        return KnownBits.constant(0, self.bits).sub(self)

    def mul(self, other: "KnownBits") -> "KnownBits":
        va, vb = self.constant_value(), other.constant_value()
        if va is not None and vb is not None:
            return KnownBits.constant(va * vb, self.bits)
        tz = min(self.bits, self.trailing_zeros() + other.trailing_zeros())
        return KnownBits(self.bits, _mask(tz), 0)

    def shl(self, amount: "KnownBits") -> "KnownBits":
        c = amount.constant_value()
        if c is None:
            return KnownBits.top(self.bits)
        # Amounts outside 0..bits-1 trap at runtime, so any transfer result
        # for them is vacuous; masking keeps the fold total regardless.
        c &= 63
        if c >= self.bits:
            return KnownBits.constant(0, self.bits)
        return KnownBits(
            self.bits, (self.zeros << c) | _mask(c), self.ones << c
        )

    def shr(self, amount: "KnownBits") -> "KnownBits":
        """Arithmetic right shift of the signed value (Python ``>>``)."""
        c = amount.constant_value()
        if c is None:
            return KnownBits.top(self.bits)
        c &= 63
        if self.bits == 1:
            # An i1 value is unsigned 0/1: any shift yields 0.
            return self if c == 0 else KnownBits.constant(0, 1)
        zeros = ones = 0
        for i in range(self.bits):
            src = self._bit(min(i + c, self.bits - 1))
            if src == 0:
                zeros |= 1 << i
            elif src == 1:
                ones |= 1 << i
        return KnownBits(self.bits, zeros, ones)

    def trunc_to(self, dst_bits: int) -> "KnownBits":
        m = _mask(dst_bits)
        return KnownBits(dst_bits, self.zeros & m, self.ones & m)

    def zext_to(self, dst_bits: int) -> "KnownBits":
        if dst_bits <= self.bits:
            return self.trunc_to(dst_bits)
        high = _mask(dst_bits) ^ _mask(self.bits)
        return KnownBits(dst_bits, self.zeros | high, self.ones)

    def sext_to(self, dst_bits: int) -> "KnownBits":
        if dst_bits <= self.bits:
            return self.trunc_to(dst_bits)
        if self.bits == 1:
            # i1 carries the unsigned value 0/1, so sext == zext here.
            return self.zext_to(dst_bits)
        high = _mask(dst_bits) ^ _mask(self.bits)
        sign = self._bit(self.bits - 1)
        if sign == 0:
            return KnownBits(dst_bits, self.zeros | high, self.ones)
        if sign == 1:
            return KnownBits(dst_bits, self.zeros, self.ones | high)
        return KnownBits(dst_bits, self.zeros, self.ones)

    # Plumbing ---------------------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, KnownBits)
            and self.bits == other.bits
            and self.zeros == other.zeros
            and self.ones == other.ones
        )

    def __hash__(self):
        return hash((self.bits, self.zeros, self.ones))

    def __repr__(self):  # pragma: no cover - debugging aid
        digits = []
        for i in range(self.bits - 1, -1, -1):
            bit = self._bit(i)
            digits.append("?" if bit is None else str(bit))
        return f"<KnownBits i{self.bits} {''.join(digits)}>"


class _KBEnv:
    """Immutable-by-convention mapping Value → KnownBits with sharing."""

    __slots__ = ("values",)

    def __init__(self, values: Optional[Dict[Value, KnownBits]] = None):
        self.values = values if values is not None else {}

    def copy(self) -> "_KBEnv":
        return _KBEnv(dict(self.values))

    def __eq__(self, other):
        return isinstance(other, _KBEnv) and self.values == other.values

    def __hash__(self):  # pragma: no cover - not used as dict key
        raise TypeError("unhashable")


class KnownBitsAnalysis(ForwardDataflow):
    """Forward known-bits dataflow over one function.

    Optimistic CFG iteration (loop phis first see only the entry edge, so
    facts like "the induction variable stays even" survive the backedge
    join); the per-value lattice has finite height ``2·bits`` so the solver
    converges without widening.  Every structural fact is additionally
    refined with the interval analysis' final range at the definition.
    """

    def __init__(
        self,
        func: Function,
        intervals: IntervalAnalysis,
        loop_info: Optional[LoopInfo] = None,
    ):
        super().__init__(func, loop_info or intervals.loop_info)
        self.intervals = intervals
        self.solve()
        self._known: Dict[Value, KnownBits] = {}
        for block in self.rpo:
            env = self.out_states.get(block)
            if env is None:
                continue
            for inst in block.instructions:
                found = env.values.get(inst)
                if found is not None:
                    self._known[inst] = found
        for arg in func.arguments:
            if arg.type.is_int:
                self._known[arg] = self._argument_bits(arg)

    # Lattice ----------------------------------------------------------------

    def initial_state(self) -> _KBEnv:
        return _KBEnv()

    def join(self, a: _KBEnv, b: _KBEnv) -> _KBEnv:
        values: Dict[Value, KnownBits] = {}
        for key, left in a.values.items():
            right = b.values.get(key)
            values[key] = left if right is None else left.join(right)
        for key, right in b.values.items():
            if key not in values:
                values[key] = right
        return _KBEnv(values)

    def copy_state(self, state: _KBEnv) -> _KBEnv:
        return state.copy()

    # Evaluation -------------------------------------------------------------

    def _argument_bits(self, arg: Argument) -> KnownBits:
        seeded = self.intervals.arg_intervals.get(arg)
        if seeded is not None:
            return KnownBits.from_interval(seeded, arg.type.bits)
        return KnownBits.top(arg.type.bits)

    def _eval(self, value: Value, env: _KBEnv) -> KnownBits:
        bits = value.type.bits
        if isinstance(value, Constant):
            return KnownBits.constant(int(value.value), bits)
        found = env.values.get(value)
        if found is not None:
            return found
        if isinstance(value, Argument):
            return self._argument_bits(value)
        return KnownBits.top(bits)

    def transfer(self, block: BasicBlock, env: _KBEnv) -> _KBEnv:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                # Bound by edge_transfer; ⊤ when no analyzed edge bound it.
                if inst.type.is_int and inst not in env.values:
                    env.values[inst] = KnownBits.top(inst.type.bits)
                continue
            result = self._transfer_inst(inst, env)
            if result is not None:
                env.values[inst] = result
        return env

    def _transfer_inst(
        self, inst: Instruction, env: _KBEnv
    ) -> Optional[KnownBits]:
        if not inst.type.is_int:
            return None
        bits = inst.type.bits
        kb = None
        if isinstance(inst, BinaryOp):
            lhs = self._eval(inst.lhs, env)
            rhs = self._eval(inst.rhs, env)
            kb = self._binary(inst.opcode, lhs, rhs, bits)
        elif isinstance(inst, (ICmp, FCmp)):
            kb = KnownBits.top(1)
        elif isinstance(inst, Select):
            kb = self._eval(inst.operands[1], env).join(
                self._eval(inst.operands[2], env)
            )
        elif isinstance(inst, Cast):
            if inst.opcode in ("sext", "zext", "trunc"):
                inner = self._eval(inst.operands[0], env)
                if inst.opcode == "sext":
                    kb = inner.sext_to(bits)
                elif inst.opcode == "zext":
                    kb = inner.zext_to(bits)
                else:
                    kb = inner.trunc_to(bits)
            else:  # fptosi
                kb = KnownBits.top(bits)
        elif isinstance(inst, UnaryOp):
            inner = self._eval(inst.operands[0], env)
            kb = inner.neg() if inst.opcode == "neg" else inner.bnot()
        else:
            # Loads, calls and anything unhandled: only the interval helps.
            kb = KnownBits.top(bits)
        return kb.refine(
            KnownBits.from_interval(self.intervals.interval_of(inst), bits)
        )

    @staticmethod
    def _binary(
        opcode: str, lhs: KnownBits, rhs: KnownBits, bits: int
    ) -> KnownBits:
        if opcode == "add":
            return lhs.add(rhs)
        if opcode == "sub":
            return lhs.sub(rhs)
        if opcode == "mul":
            return lhs.mul(rhs)
        if opcode == "and":
            return lhs.band(rhs)
        if opcode == "or":
            return lhs.bor(rhs)
        if opcode == "xor":
            return lhs.bxor(rhs)
        if opcode == "shl":
            return lhs.shl(rhs)
        if opcode == "shr":
            return lhs.shr(rhs)
        return KnownBits.top(bits)  # div, rem: interval refinement only

    # Branch refinement + phi binding ----------------------------------------

    def edge_transfer(
        self, pred: BasicBlock, succ: BasicBlock, env: _KBEnv
    ) -> _KBEnv:
        term = pred.terminator
        if isinstance(term, CondBranch):
            cond = term.condition
            if (
                isinstance(cond, ICmp)
                and cond.predicate == "eq"
                and term.true_target is not term.false_target
                and succ is term.true_target
            ):
                # On the taken edge of ``icmp eq x, y`` both sides carry the
                # meet of their masks (most useful when one is a constant).
                lhs_v, rhs_v = cond.operands[0], cond.operands[1]
                if lhs_v.type.is_int:
                    lhs = self._eval(lhs_v, env)
                    rhs = self._eval(rhs_v, env)
                    meet = lhs.refine(rhs)
                    if not isinstance(lhs_v, Constant):
                        env.values[lhs_v] = meet
                    if not isinstance(rhs_v, Constant):
                        env.values[rhs_v] = meet
        for phi in succ.phis():
            if phi.type.is_int:
                env.values[phi] = self._eval(phi.incoming_for(pred), env)
        return env

    # Queries ----------------------------------------------------------------

    def known_of(self, value: Value) -> KnownBits:
        if isinstance(value, Constant):
            return KnownBits.constant(int(value.value), value.type.bits)
        found = self._known.get(value)
        if found is not None:
            return found
        return KnownBits.top(value.type.bits)


class DemandedBitsAnalysis:
    """Backward demanded-bits over the SSA def-use graph.

    ``demanded[v]`` is the union, over every (transitive) use of ``v``, of
    the bits of ``v`` that can influence an observable effect — a store, a
    branch condition, a call argument, a return value or an address
    computation.  Demands only ever grow and each mask is bounded by the
    type mask, so the worklist fixpoint terminates through loops (phi
    cycles) without any special casing.
    """

    def __init__(self, func: Function):
        self.func = func
        self.demanded: Dict[Value, int] = {}
        self._worklist: List[Value] = []
        self._solve()

    # Demand plumbing --------------------------------------------------------

    def _demand(self, value: Value, mask: int) -> None:
        if isinstance(value, Constant) or not value.type.is_int:
            return
        mask &= _mask(value.type.bits)
        current = self.demanded.get(value, 0)
        merged = current | mask
        if merged != current:
            self.demanded[value] = merged
            self._worklist.append(value)

    def _solve(self) -> None:
        for inst in self.func.instructions():
            self._root_demands(inst)
        while self._worklist:
            value = self._worklist.pop()
            if isinstance(value, Instruction):
                self._propagate(value)

    def _root_demands(self, inst: Instruction) -> None:
        """Unconditional demand sources: observable effects need every bit
        of the values feeding them."""
        full = -1
        if isinstance(inst, Store):
            self._demand(inst.value, full)
        elif isinstance(inst, CondBranch):
            self._demand(inst.condition, full)
        elif isinstance(inst, Call):
            for op in inst.operands:
                self._demand(op, full)
        elif isinstance(inst, Return):
            if inst.operands:
                self._demand(inst.operands[0], full)
        elif isinstance(inst, GetElementPtr):
            for index in inst.indices:
                self._demand(index, full)
        elif isinstance(inst, Cast) and inst.opcode == "sitofp":
            self._demand(inst.operands[0], full)

    def _propagate(self, inst: Instruction) -> None:
        """Push ``demanded[inst]`` back into the instruction's operands."""
        demand = self.demanded.get(inst, 0)
        if demand == 0:
            return
        if isinstance(inst, BinaryOp):
            self._propagate_binary(inst, demand)
        elif isinstance(inst, ICmp):
            # Any operand bit can flip a comparison.
            self._demand(inst.operands[0], -1)
            self._demand(inst.operands[1], -1)
        elif isinstance(inst, Select):
            self._demand(inst.operands[0], -1)
            self._demand(inst.operands[1], demand)
            self._demand(inst.operands[2], demand)
        elif isinstance(inst, Phi):
            for value, _pred in inst.incoming():
                self._demand(value, demand)
        elif isinstance(inst, UnaryOp):
            if inst.opcode == "not":
                self._demand(inst.operands[0], demand)
            else:  # neg = 0 - v: borrow ripples upward only
                self._demand(inst.operands[0], _low_demand(demand))
        elif isinstance(inst, Cast):
            self._propagate_cast(inst, demand)

    def _propagate_binary(self, inst: BinaryOp, demand: int) -> None:
        opcode = inst.opcode
        lhs, rhs = inst.lhs, inst.rhs
        if opcode in ("add", "sub", "mul"):
            # Result bit i depends on operand bits ≤ i (carries go upward).
            self._demand(lhs, _low_demand(demand))
            self._demand(rhs, _low_demand(demand))
        elif opcode == "and":
            self._demand(lhs, self._masked_by_constant(demand, rhs, invert=False))
            self._demand(rhs, self._masked_by_constant(demand, lhs, invert=False))
        elif opcode == "or":
            self._demand(lhs, self._masked_by_constant(demand, rhs, invert=True))
            self._demand(rhs, self._masked_by_constant(demand, lhs, invert=True))
        elif opcode == "xor":
            self._demand(lhs, demand)
            self._demand(rhs, demand)
        elif opcode in ("shl", "shr"):
            bits = inst.type.bits
            amount = self._shift_amount(rhs)
            if amount is None:
                if opcode == "shl":
                    # shl only moves bits upward: sources ≤ msb(demand).
                    self._demand(lhs, _low_demand(demand))
                else:
                    # shr only moves bits downward: sources ≥ lsb(demand).
                    lsb = (demand & -demand).bit_length() - 1
                    self._demand(lhs, _mask(bits) ^ _mask(lsb))
            elif opcode == "shl":
                if amount < bits:
                    self._demand(lhs, demand >> amount)
            else:
                if bits == 1:
                    if amount == 0:
                        self._demand(lhs, demand)
                else:
                    src = 0
                    for i in range(bits):
                        if (demand >> i) & 1:
                            src |= 1 << min(i + amount, bits - 1)
                    self._demand(lhs, src)
            # The shifter reads only the low 6 bits of the amount.
            self._demand(rhs, 63)
        else:  # div, rem: every operand bit matters
            self._demand(lhs, -1)
            self._demand(rhs, -1)

    def _propagate_cast(self, inst: Cast, demand: int) -> None:
        src = inst.operands[0]
        if not src.type.is_int:
            return  # fptosi
        src_bits = src.type.bits
        src_mask = _mask(src_bits)
        if inst.opcode == "trunc":
            self._demand(src, demand & src_mask)
        elif inst.opcode == "zext":
            self._demand(src, demand & src_mask)
        elif inst.opcode == "sext":
            wanted = demand & src_mask
            if src_bits > 1 and demand & ~src_mask:
                wanted |= 1 << (src_bits - 1)  # sign bit fills the high part
            self._demand(src, wanted)

    @staticmethod
    def _shift_amount(value: Value) -> Optional[int]:
        if isinstance(value, Constant) and value.type.is_int:
            return int(value.value) & 63
        return None

    def _masked_by_constant(
        self, demand: int, other: Value, invert: bool
    ) -> int:
        """Demand through ``and``/``or`` with a constant other operand: bits
        the constant forces (0 for and, 1 for or) are not demanded."""
        if isinstance(other, Constant) and other.type.is_int:
            u = int(other.value) & _mask(other.type.bits)
            return demand & (~u if invert else u)
        return demand

    # Queries ----------------------------------------------------------------

    def demanded_of(self, value: Value) -> int:
        return self.demanded.get(value, 0)


def _low_demand(demand: int) -> int:
    """All bits up to the highest demanded one (carry/borrow closure)."""
    return _mask(demand.bit_length())


def demanded_truncate(value: int, demand: int, bits: int) -> int:
    """The value a datapath narrowed to ``msb(demand)+1`` bits would carry:
    low bits preserved, everything above reconstructed by sign-extension.
    Agrees with ``value`` on every demanded bit."""
    width = demand.bit_length()
    if width == 0 or width >= bits:
        return value
    low = value & _mask(width)
    if (low >> (width - 1)) & 1:
        low |= _mask(bits) ^ _mask(width)
    return _to_signed(low, bits)


class BitwidthAnalysis:
    """Per-function meet of known bits and demanded bits."""

    def __init__(self, func: Function, intervals: IntervalAnalysis):
        self.func = func
        self.known_bits = KnownBitsAnalysis(func, intervals)
        self.demanded_bits = DemandedBitsAnalysis(func)

    def known(self, value: Value) -> KnownBits:
        return self.known_bits.known_of(value)

    def demanded(self, value: Value) -> int:
        return self.demanded_bits.demanded_of(value)

    def known_width(self, value: Value) -> int:
        return self.known(value).significant_bits()

    def demanded_width(self, value: Value) -> int:
        return max(1, self.demanded(value).bit_length())

    def proven_width(self, value: Value) -> int:
        """Narrowest sound datapath width: enough bits to represent the
        value (known side) or to cover every bit any observable effect can
        depend on (demanded side), whichever is smaller."""
        bits = value.type.bits
        return max(
            1, min(bits, self.known_width(value), self.demanded_width(value))
        )

    def width_map(self) -> Dict[Instruction, int]:
        """Proven widths for every integer instruction (DFG width overrides)."""
        widths: Dict[Instruction, int] = {}
        for inst in self.func.instructions():
            if inst.type.is_int:
                widths[inst] = self.proven_width(inst)
        return widths


class ModuleBitwidthAnalysis:
    """Bitwidth analyses for every defined function, sharing one (optionally
    caller-seeded) module interval analysis for cross-refinement."""

    def __init__(
        self, module: Module, intervals: Optional[ModuleIntervalAnalysis] = None
    ):
        self.module = module
        self.intervals = intervals or ModuleIntervalAnalysis(module)
        self._analyses: Dict[Function, BitwidthAnalysis] = {}

    def for_function(self, func: Function) -> BitwidthAnalysis:
        found = self._analyses.get(func)
        if found is None:
            found = BitwidthAnalysis(func, self.intervals.for_function(func))
            self._analyses[func] = found
        return found

    def width_map(self, func: Function) -> Dict[Instruction, int]:
        return self.for_function(func).width_map()

    # Reporting --------------------------------------------------------------

    def function_summary(self, func: Function) -> Dict[str, float]:
        """Width/area summary for one function (``repro bitwidth``)."""
        from ..ir import resource_class
        from ..hls.techlib import DEFAULT_TECHLIB

        analysis = self.for_function(func)
        int_ops = narrowed = 0
        type_bits_total = proven_bits_total = 0
        type_area = proven_area = 0.0
        for inst in func.instructions():
            if not inst.type.is_int:
                continue
            resource = resource_class(inst)
            if resource in ("control", "alloca", "call"):
                continue
            width = analysis.proven_width(inst)
            int_ops += 1
            type_bits_total += inst.type.bits
            proven_bits_total += width
            if width < inst.type.bits:
                narrowed += 1
            type_area += DEFAULT_TECHLIB.area(resource, inst.type.bits)
            proven_area += DEFAULT_TECHLIB.area(resource, width)
        return {
            "int_ops": int_ops,
            "narrowed_ops": narrowed,
            "type_bits": type_bits_total,
            "proven_bits": proven_bits_total,
            "type_area_um2": type_area,
            "proven_area_um2": proven_area,
        }
