"""Unit tests for the IR type system."""

import pytest

from repro.ir import (
    ArrayType,
    BOOL,
    F32,
    F64,
    FloatType,
    FunctionType,
    I8,
    I32,
    I64,
    IntType,
    PointerType,
    VOID,
    sizeof,
)


class TestEquality:
    def test_int_types_structural(self):
        assert IntType(32) == I32
        assert IntType(32) != IntType(64)
        assert hash(IntType(32)) == hash(I32)

    def test_float_types_structural(self):
        assert FloatType(32) == F32
        assert FloatType(64) == F64
        assert F32 != F64

    def test_int_never_equals_float(self):
        assert IntType(32) != FloatType(32)

    def test_pointer_structural(self):
        assert PointerType(F32) == PointerType(F32)
        assert PointerType(F32) != PointerType(F64)

    def test_array_structural(self):
        assert ArrayType(F32, 4) == ArrayType(F32, 4)
        assert ArrayType(F32, 4) != ArrayType(F32, 5)

    def test_function_type(self):
        a = FunctionType(VOID, (I32, F32))
        b = FunctionType(VOID, (I32, F32))
        assert a == b
        assert a != FunctionType(I32, (I32, F32))

    def test_usable_as_dict_keys(self):
        table = {I32: "int", PointerType(F32): "ptr"}
        assert table[IntType(32)] == "int"
        assert table[PointerType(FloatType(32))] == "ptr"


class TestClassification:
    def test_predicates(self):
        assert I32.is_int and I32.is_scalar and not I32.is_float
        assert F64.is_float and F64.is_scalar
        assert BOOL.is_bool and BOOL.is_int
        assert not I32.is_bool
        assert VOID.is_void
        assert PointerType(I32).is_pointer
        assert ArrayType(I32, 3).is_array

    def test_int_range(self):
        assert I8.min_value == -128
        assert I8.max_value == 127
        assert BOOL.min_value == 0
        assert BOOL.max_value == 1


class TestArrays:
    def test_nested_array_str(self):
        ty = ArrayType(ArrayType(F32, 4), 3)
        assert str(ty) == "[3 x [4 x f32]]"

    def test_flattened_count(self):
        ty = ArrayType(ArrayType(ArrayType(I32, 2), 3), 4)
        assert ty.flattened_count == 24

    def test_scalar_element(self):
        ty = ArrayType(ArrayType(F64, 4), 3)
        assert ty.scalar_element == F64


class TestSizeof:
    @pytest.mark.parametrize("ty,size", [
        (I8, 1), (I32, 4), (I64, 8), (F32, 4), (F64, 8),
        (PointerType(I32), 8),
        (ArrayType(F32, 10), 40),
        (ArrayType(ArrayType(I32, 4), 3), 48),
        (BOOL, 1),
    ])
    def test_sizes(self, ty, size):
        assert sizeof(ty) == size

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            sizeof(VOID)


class TestInvalidConstruction:
    def test_zero_width_int(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_bad_float_width(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_pointer_to_void(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_negative_array(self):
        with pytest.raises(ValueError):
            ArrayType(I32, -1)

    def test_array_of_void(self):
        with pytest.raises(ValueError):
            ArrayType(VOID, 4)
