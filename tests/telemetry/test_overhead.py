"""Overhead guard: telemetry must not touch the compiled hot loop.

Two guarantees, checked separately:

* **Structural** (the real invariant): the generated closure source of the
  compiled engine contains no telemetry symbols at all, and no telemetry
  call sites appear below the top-level ``call_function`` boundary.
* **Timing** (a smoke bound): with the default no-op context, compiled
  interpreter throughput matches a recording context to within a small
  factor — measured best-of-N with retries, since single-shot wall-clock
  ratios on a busy host are noisier than the effect.
"""

import time

from repro.frontend import compile_source
from repro.interp.interpreter import Interpreter
from repro.telemetry import Telemetry, use
from repro.workloads import get_workload


class TestStructural:
    def test_compiled_source_has_no_telemetry_symbols(self):
        workload = get_workload("trisolv")
        module = compile_source(workload.source, "trisolv")
        interp = Interpreter(module)
        interp.precompile(elide=False)
        source = interp._programs[False].source
        for symbol in ("telemetry", "tele", "span", "count(", "current"):
            assert symbol not in source

    def test_counters_flushed_once_per_top_level_call(self):
        workload = get_workload("trisolv")
        module = compile_source(workload.source, "trisolv")
        tele = Telemetry()
        interp = Interpreter(module)
        with use(tele):
            interp.run(workload.entry)
        counters = tele.snapshot()["counters"]
        # One top-level run: exactly one flush of each interp counter.
        assert counters["interp.runs"] == 1
        assert counters["interp.instructions"] == interp.instructions
        assert counters["interp.checked_accesses"] == interp.checked_accesses
        assert counters["interp.elided_accesses"] == interp.elided_accesses

    def test_nested_calls_do_not_start_spans(self):
        # trisolv's main calls kernels; only the top-level call may trace.
        workload = get_workload("trisolv")
        module = compile_source(workload.source, "trisolv")
        tele = Telemetry()
        interp = Interpreter(module, engine="reference")
        with use(tele):
            interp.run(workload.entry)
        runs = [s for s in tele.walk_spans() if s.name == "interp.run"]
        assert len(runs) == 1


class TestThroughput:
    def test_noop_context_keeps_compiled_throughput(self):
        workload = get_workload("trisolv")
        module = compile_source(workload.source, "trisolv")

        def best_rate(tele=None):
            interp = Interpreter(module)
            interp.precompile(elide=False)
            best = 0.0
            for _ in range(3):
                started = time.perf_counter()
                if tele is None:
                    interp.run(workload.entry)
                else:
                    with use(tele):
                        interp.run(workload.entry)
                seconds = max(1e-9, time.perf_counter() - started)
                best = max(best, interp.instructions / seconds)
            return best

        # Retry the whole measurement: the true overhead is one enabled
        # check per top-level call, so any clean sample passes easily.
        for attempt in range(4):
            null_rate = best_rate()
            recording_rate = best_rate(Telemetry())
            if null_rate >= 0.98 * recording_rate:
                return
        raise AssertionError(
            f"no-op telemetry throughput {null_rate:,.0f} inst/s fell "
            f"below 98% of recording-context {recording_rate:,.0f} inst/s "
            f"after {attempt + 1} attempts"
        )
