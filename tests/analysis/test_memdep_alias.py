"""Memory-dependence aliasing tests: points-to-backed may-alias vs the
historical blanket-restrict model, and the inner-window disjointness test
for outer-loop dependences."""

from repro.analysis.access_patterns import AccessPatternAnalysis
from repro.analysis.memdep import MemoryDependenceAnalysis
from repro.dataflow import ModuleIntervalAnalysis, PointsToAnalysis
from repro.frontend import compile_source
from repro.workloads import get_workload


def analyses(source, name, func_name):
    module = compile_source(source, name)
    func = module.get_function(func_name)
    access = AccessPatternAnalysis(func)
    pta = PointsToAnalysis(module)
    intervals = ModuleIntervalAnalysis(module).for_function(func)
    return func, access, pta, intervals


class TestRestrictModelMisses:
    def setup_method(self):
        workload = get_workload("smooth-alias")
        self.func, self.access, self.pta, self.intervals = analyses(
            workload.source, workload.name, "smooth"
        )
        self.loop = self.access.loop_info.loops[0]

    def test_points_to_model_reports_alias_dependence(self):
        md = MemoryDependenceAnalysis(
            self.access, points_to=self.pta, intervals=self.intervals
        )
        deps = md.loop_carried(self.loop)
        assert any(d.via_alias for d in deps), (
            "smooth(buf, buf, n) must carry a dependence between dst and src"
        )

    def test_restrict_model_drops_it(self):
        restrict = MemoryDependenceAnalysis(
            self.access, points_to=self.pta, assume_restrict=True,
            intervals=self.intervals,
        )
        assert all(
            not d.via_alias for d in restrict.loop_carried(self.loop)
        )

    def test_misses_reported_exactly(self):
        md = MemoryDependenceAnalysis(
            self.access, points_to=self.pta, intervals=self.intervals
        )
        restrict = MemoryDependenceAnalysis(
            self.access, points_to=self.pta, assume_restrict=True,
            intervals=self.intervals,
        )
        misses = md.restrict_model_misses(self.loop)
        assert misses
        assert len(md.loop_carried(self.loop)) == (
            len(restrict.loop_carried(self.loop)) + len(misses)
        )
        assert restrict.restrict_model_misses(self.loop) == []


ELIMINATION = """
float A[16][16];
void elim(int n) {
  for (int k = 0; k < n - 1; k = k + 1) {
    for (int i = k + 1; i < n; i = i + 1) {
      for (int j = k; j < n; j = j + 1) {
        A[i][j] = A[i][j] - A[k][j];
      }
    }
  }
}
int main() { elim(16); return 0; }
"""

RECTANGULAR = """
float C[16][16];
void fill(int n) {
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j < n; j = j + 1) {
      C[i][j] = C[i][j] + 1.0f;
    }
  }
}
int main() { fill(16); return 0; }
"""


def outer_deps(source, name, func_name):
    func, access, pta, intervals = analyses(source, name, func_name)
    md = MemoryDependenceAnalysis(access, points_to=pta, intervals=intervals)
    outer = max(access.loop_info.loops, key=lambda l: len(l.blocks))
    return md.loop_carried(outer)


class TestInnerWindowDisjointness:
    def test_gaussian_elimination_outer_loop_is_carried(self):
        """Iteration k stores rows i > k that iteration i later reads: the
        rows-assumed-disjoint shortcut must not fire here."""
        deps = outer_deps(ELIMINATION, "elim", "elim")
        flows = [d for d in deps if d.kind == "flow"]
        assert flows, "elimination outer loop lost its carried flow dependence"
        assert min(d.effective_distance for d in flows) == 1

    def test_rectangular_rows_stay_disjoint(self):
        """C[i][j] touches row i only: the outer-loop stride (one row)
        exceeds the inner window, so no carried dependence exists."""
        assert outer_deps(RECTANGULAR, "fill", "fill") == []

    def test_unknown_trip_bound_is_conservative(self):
        """Without interval facts the inner window is unbounded: a carried
        dependence must still be assumed (the j-index could run past the
        row), claiming at most the trivially sound distance 1 and never an
        *exact* vector."""
        module = compile_source(RECTANGULAR, "rect")
        func = module.get_function("fill")
        access = AccessPatternAnalysis(func)
        md = MemoryDependenceAnalysis(access)  # no intervals supplied
        outer = max(access.loop_info.loops, key=lambda l: len(l.blocks))
        deps = md.loop_carried(outer)
        assert deps
        assert all(d.effective_distance == 1 for d in deps)
        assert all(d.vector is None or not d.vector.exact for d in deps)
