"""End-to-end integration tests of the Cayman framework."""

import pytest

from repro import Cayman
from repro.hls import CVA6_TILE_AREA_UM2
from repro.workloads import get_workload

from ..conftest import FIG2_SOURCE


@pytest.fixture(scope="module")
def fig2_result():
    return Cayman().run(FIG2_SOURCE, name="fig2")


class TestEndToEnd:
    def test_produces_solutions(self, fig2_result):
        assert fig2_result.front
        assert fig2_result.merged
        assert fig2_result.runtime_seconds > 0

    def test_front_is_pareto(self, fig2_result):
        non_empty = [s for s in fig2_result.front if not s.is_empty]
        for a, b in zip(non_empty, non_empty[1:]):
            assert a.area <= b.area
            assert a.saved_seconds < b.saved_seconds

    def test_kernels_never_overlap(self, fig2_result):
        for merged in fig2_result.merged:
            regions = [a.config.region for a in merged.solution.accelerators]
            for i, r1 in enumerate(regions):
                for r2 in regions[i + 1:]:
                    assert not (r1.blocks & r2.blocks)

    def test_budget_monotonicity(self, fig2_result):
        speedups = [
            fig2_result.speedup_under_budget(budget)
            for budget in (0.05, 0.15, 0.25, 0.45, 0.65)
        ]
        for a, b in zip(speedups, speedups[1:]):
            assert b >= a - 1e-9

    def test_budget_respected(self, fig2_result):
        for budget in (0.1, 0.25, 0.65):
            best = fig2_result.best_under_budget(budget)
            assert best.area_after <= budget * CVA6_TILE_AREA_UM2

    def test_fig2_hot_kernels_selected(self, fig2_result):
        best = fig2_result.best_under_budget(0.65)
        names = " ".join(best.solution.kernel_names())
        # The dot-product nest (func1) dominates the profile and must be in.
        assert "func1" in names

    def test_speedup_worthwhile(self, fig2_result):
        assert fig2_result.speedup_under_budget(0.65) > 3.0

    def test_coupled_only_ablation(self):
        full = Cayman().run(FIG2_SOURCE, name="fig2")
        coupled = Cayman(coupled_only=True).run(FIG2_SOURCE, name="fig2")
        assert (
            full.speedup_under_budget(0.65)
            > coupled.speedup_under_budget(0.65)
        )

    def test_merging_disabled(self):
        result = Cayman(merging=False).run(FIG2_SOURCE, name="fig2")
        for merged in result.merged:
            assert merged.merge_steps == 0
            assert merged.area_after == merged.area_before

    def test_accepts_prebuilt_module(self, fig2_module):
        result = Cayman().run(fig2_module)
        assert result.front

    def test_pareto_points_format(self, fig2_result):
        points = fig2_result.pareto_points()
        assert points == sorted(points)
        for area_ratio, speedup in points:
            assert area_ratio >= 0
            assert speedup >= 1.0


class TestOnRealWorkloads:
    @pytest.mark.parametrize("name", ["atax", "fft", "spmv", "loops-all-mid-10k-sp"])
    def test_workload_end_to_end(self, name):
        workload = get_workload(name)
        result = Cayman().run(workload.source, name=name)
        assert result.speedup_under_budget(0.65) > 1.0
        best = result.best_under_budget(0.65)
        assert best.solution.accelerators

    def test_interface_specialization_used(self):
        workload = get_workload("atax")
        result = Cayman().run(workload.source, name="atax")
        best = result.best_under_budget(0.65)
        totals = best.solution.interface_totals()
        assert totals["decoupled"] + totals["scratchpad"] > 0

    def test_loops_all_coupled_gap_small(self):
        """Paper §IV-B: loops-all has FP loop-carried deps, so coupled-only
        and full Cayman differ little (RecMII dominates)."""
        workload = get_workload("loops-all-mid-10k-sp")
        full = Cayman().run(workload.source, name="la")
        coupled = Cayman(coupled_only=True).run(workload.source, name="la")
        s_full = full.speedup_under_budget(0.65)
        s_coupled = coupled.speedup_under_budget(0.65)
        assert s_full >= s_coupled - 1e-9
        # The relative gap stays far below the stream-dominated kernels'.
        atax = get_workload("atax")
        atax_full = Cayman().run(atax.source, name="atax").speedup_under_budget(0.65)
        atax_coupled = Cayman(coupled_only=True).run(
            atax.source, name="atax"
        ).speedup_under_budget(0.65)
        assert (s_full / s_coupled) < (atax_full / atax_coupled)


class TestErrorPaths:
    def test_missing_entry_function(self):
        with pytest.raises(KeyError):
            Cayman().run("int helper() { return 1; }", entry="main")

    def test_program_with_no_hot_regions(self):
        """A trivially cold program yields an empty (but valid) result."""
        result = Cayman().run("int main() { return 0; }")
        assert result.front  # at least the empty solution
        best = result.best_under_budget(0.65)
        assert best.solution.is_empty
        assert best.speedup(result.total_seconds) == 1.0

    def test_runtime_failure_propagates(self):
        source = "int main() { int z = 0; return 1 / z; }"
        from repro.interp import InterpreterError

        with pytest.raises(InterpreterError):
            Cayman().run(source)

    def test_frontend_error_propagates(self):
        from repro.frontend import FrontendError

        with pytest.raises(FrontendError):
            Cayman().run("int main( { return 0; }")
