"""Synthetic analysis-stress workloads (not part of the paper's 28).

These programs exercise corner cases of the static-analysis layer rather
than representing paper benchmarks.  ``smooth-alias`` binds two pointer
arguments of the same kernel to one buffer — the exact situation the
historical blanket-``restrict`` aliasing model mishandles (it claims the
arguments never alias, dropping a real loop-carried dependence).  The
points-to analysis proves the overlap, and the sanitizing interpreter
demonstrates the restrict model's unsoundness at runtime.

``bitwidth-adversary`` stresses the bitwidth layer: an LCG whose state
parity alternates every iteration (so no sound analysis may claim its low
bit), mixed through shifts, xor, masking, negation and 64-bit widening.
Run under ``--sanitize`` it must be violation-free; run with
``--inject-unsound-bitwidth`` (which deliberately mis-claims one
known-zero bit per instruction) the sanitizer must fail — demonstrating
an unsound transfer function cannot slip through.

``seidel-1d``, ``iir-interleaved`` and ``conv-dilated`` stress the
dependence layer: each has an in-place recurrence over a *symbolic
stride* (a row stride or channel count known only through a kernel
argument) with a small constant iteration distance.  The 1-D windowed
distance test cannot read a symbolic stride and reports "carried,
distance unknown" — forcing recurrence II equal to the full recurrence
latency — while the affine dependence-vector engine resolves the stride
through interprocedural intervals and proves the real distance, cutting
the pipeline II at identical area (the ``pipeline_ii`` bench section
measures exactly this before/after).

``wave-lag`` is the sibling soundness case: the recurrence *distance
itself* is the argument (``W[j] = f(W[j - lag])``).  The 1-D test sees an
invariant symbolic offset difference and — assuming lockstep sequences
stay disjoint — drops the dependence entirely, an unsound claim the
vector engine repairs by proving the finite distance ``lag``; its
``pipeline_ii`` delta is therefore an II *increase* (a soundness fix,
not a regression).

``stride2-collider``, ``bank-transpose`` and ``dual-interleave`` stress
the scratchpad bank-conflict layer (``repro banks``).  The collider's
``A[2*i]`` gather puts every unrolled lane pair an even number of words
apart, so *no* cyclic or block scheme up to the unroll factor is
conflict-free — the banking verdict must serialize the group (the old
model assumed perfect parallelism here; ``--inject-unsound-banking``
re-claims the conflicted schemes and the sanitizer must catch the
observed collisions).  ``bank-transpose`` sweeps a row-major matrix by
column (stride = one full row), the classic case where cyclic banking
always collides but *block* banking provably never does — the verdict
must pick ``block-4``.  ``dual-interleave`` touches a stride-1 array
(proven cyclic) and a stride-2 array (provably conflicted) in one loop,
so one configuration carries mixed per-group verdicts.

``stencil-reuse-3``, ``fwd-store-load`` and ``reuse-breaker`` stress the
data-reuse layer (``repro reuse``).  The stencil reads three overlapping
window taps of a read-only array — pure *self-reuse* at distances 1 and
2, so two of the three loads must come from shift-register taps instead
of scratchpad ports.  ``fwd-store-load`` feeds its own store back two
iterations later — *store-to-load forwarding* at lag 2, the group-reuse
case.  ``reuse-breaker`` has the same lag-2 feedback but interposes a
store through a may-alias pointer argument between producer and
consumer: the forwarding claim must degrade to *unknown* (never
exploited), and the workload must still sanitize clean because no pair
is claimed.
"""

from .registry import Workload, register

register(Workload(
    name="smooth-alias",
    suite="synthetic",
    description=(
        "IIR-style smoothing kernel called once with disjoint buffers and "
        "once with src aliased to dst (restrict-model stress)"
    ),
    outputs=("buf", "out"),
    source="""
float buf[96];
float out[96];

void init(int n) {
  for (int i = 0; i < n; i++) {
    buf[i] = (float)((i * 7 + 3) % 17) / 16.0f;
    out[i] = 0.0f;
  }
}

void smooth(float *dst, float *src, int n) {
  for (int i = 1; i < n; i++) {
    dst[i] = src[i - 1] * 0.5f + dst[i] * 0.25f;
  }
}

int main() {
  init(96);
  smooth(out, buf, 96);
  smooth(buf, buf, 96);
  return 0;
}
""",
))

register(Workload(
    name="bitwidth-adversary",
    suite="synthetic",
    description=(
        "alternating-parity LCG with shifts, xor, masking and 64-bit "
        "mixing: every low bit is runtime-live, so any unsound known-bits "
        "or demanded-bits claim is caught by the sanitizer"
    ),
    outputs=("mix",),
    source="""
int mix[64];

int lcg_mix(int rounds) {
  int s = 1;
  int acc = 0;
  for (int i = 0; i < rounds; i++) {
    s = s * 5 + 3;
    int masked = s & 255;
    int doubled = i * 2;
    int shifted = (s >> 3) ^ (masked << 2);
    long wide = (long)s * 3;
    int narrow = (int)wide;
    int neg = 0 - masked;
    if ((s & 1) == 1) {
      acc = acc ^ (shifted + doubled);
    } else {
      acc = acc + (narrow ^ neg);
    }
  }
  return acc;
}

int main() {
  for (int i = 0; i < 64; i++) {
    mix[i] = lcg_mix(i + 1);
  }
  return 0;
}
""",
))

register(Workload(
    name="seidel-1d",
    suite="synthetic",
    description=(
        "red-black Gauss-Seidel-like column sweep over a linearized grid: "
        "each cell feeds back the cell two rows up, across a symbolic row "
        "stride n (distance 2, stride known only interprocedurally)"
    ),
    outputs=("G",),
    source="""
float G[600];

void init(int cells) {
  for (int i = 0; i < cells; i++) {
    G[i] = (float)((i * 11 + 5) % 23) / 22.0f;
  }
}

void sweep(int n, int rows) {
  for (int t = 0; t < 2; t++) {
    cols: for (int c = 0; c < n; c++) {
      col_sweep: for (int r = 2; r < rows; r++) {
        G[r * n + c] = G[r * n + c] * 0.5f + G[(r - 2) * n + c] * 0.5f;
      }
    }
  }
}

int main() {
  init(576);
  sweep(24, 24);
  return 0;
}
""",
))

register(Workload(
    name="wave-lag",
    suite="synthetic",
    description=(
        "time-stepped 1-D wave update feeding back the sample `lag` "
        "positions behind: recurrence distance = lag, an argument (the "
        "1-D windowed test unsoundly drops this dependence; the vector "
        "engine proves distance lag)"
    ),
    outputs=("W",),
    source="""
float W[512];

void init(int n) {
  for (int i = 0; i < n; i++) {
    W[i] = (float)((i * 13 + 7) % 31) / 30.0f;
  }
}

void step(int lag, int n) {
  for (int t = 0; t < 6; t++) {
    upd: for (int j = lag; j < n; j++) {
      W[j] = W[j] * 0.5f + W[j - lag] * 0.5f;
    }
  }
}

int main() {
  init(512);
  step(6, 512);
  return 0;
}
""",
))

register(Workload(
    name="conv-dilated",
    suite="synthetic",
    description=(
        "in-place accumulation over dilated sample positions B[j*d] = "
        "B[(j-3)*d]*a + X[j*d]: symbolic stride d, carried distance 3"
    ),
    outputs=("B",),
    source="""
float B[400];
float X[400];

void init(int n) {
  for (int i = 0; i < n; i++) {
    B[i] = 0.0f;
    X[i] = (float)((i * 5 + 2) % 19) / 18.0f;
  }
}

void conv(int d, int taps) {
  acc: for (int j = 3; j < taps; j++) {
    B[j * d] = B[(j - 3) * d] * 0.25f + X[j * d];
  }
}

int main() {
  init(400);
  conv(4, 100);
  return 0;
}
""",
))

register(Workload(
    name="iir-interleaved",
    suite="synthetic",
    description=(
        "order-2 in-place IIR feedback over channel-interleaved samples: "
        "symbolic element stride ch, carried distance 2 frames"
    ),
    outputs=("S",),
    source="""
float S[512];

void init(int n) {
  for (int i = 0; i < n; i++) {
    S[i] = (float)((i * 13 + 7) % 31) / 30.0f;
  }
}

void filt(int ch, int frames) {
  chans: for (int c = 0; c < ch; c++) {
    taps: for (int j = 2; j < frames; j++) {
      S[j * ch + c] = S[j * ch + c] * 0.6f + S[(j - 2) * ch + c] * 0.4f;
    }
  }
}

int main() {
  init(480);
  filt(4, 120);
  return 0;
}
""",
))

register(Workload(
    name="stride2-collider",
    suite="synthetic",
    description=(
        "stride-2 gather over a scratchpad group: every lane pair lands "
        "an even word distance apart, so no cyclic/block banking scheme "
        "is conflict-free and the group must serialize"
    ),
    outputs=("R",),
    source="""
float A[128];
float R[64];

void init(int n) {
  for (int i = 0; i < n; i++) {
    A[i] = (float)((i * 5 + 2) % 19) / 18.0f;
  }
  for (int j = 0; j < 64; j++) {
    R[j] = 0.0f;
  }
}

void collide(int reps, int n) {
  rep: for (int t = 0; t < reps; t++) {
    gather: for (int i = 0; i < n; i++) {
      R[i] = R[i] * 0.5f + A[2 * i] * 0.5f;
    }
  }
}

int main() {
  init(128);
  collide(16, 64);
  return 0;
}
""",
))

register(Workload(
    name="bank-transpose",
    suite="synthetic",
    description=(
        "column sweep over a row-major matrix (stride = one 24-element "
        "row): cyclic banking provably collides at every factor while "
        "block banking is provably conflict-free — the verdict must "
        "select block-4"
    ),
    outputs=("Csum",),
    source="""
float T[96];
float Csum[24];

void init(int n) {
  for (int i = 0; i < n; i++) {
    T[i] = (float)((i * 11 + 5) % 23) / 22.0f;
  }
  for (int j = 0; j < 24; j++) {
    Csum[j] = 0.0f;
  }
}

void colsum(int reps, int cols) {
  rep: for (int t = 0; t < reps; t++) {
    cols_l: for (int c = 0; c < cols; c++) {
      float s = 0.0f;
      rows_l: for (int r = 0; r < 4; r++) {
        s = s + T[r * 24 + c];
      }
      Csum[c] = Csum[c] * 0.5f + s * 0.125f;
    }
  }
}

int main() {
  init(96);
  colsum(8, 24);
  return 0;
}
""",
))

register(Workload(
    name="dual-interleave",
    suite="synthetic",
    description=(
        "one loop over two scratchpad groups: a stride-1 array proves "
        "cyclic banking while an interleaved stride-2 array is provably "
        "conflicted — mixed per-group verdicts in a single configuration"
    ),
    outputs=("S",),
    source="""
float S[96];
float D[192];

void init(int n) {
  for (int i = 0; i < n; i++) {
    D[i] = (float)((i * 3 + 1) % 29) / 28.0f;
  }
  for (int j = 0; j < 96; j++) {
    S[j] = (float)((j * 7 + 4) % 13) / 12.0f;
  }
}

void gath(int reps, int n) {
  rep: for (int t = 0; t < reps; t++) {
    mix: for (int i = 0; i < n; i++) {
      S[i] = S[i] * 0.5f + D[2 * i] * 0.25f + D[2 * i + 1] * 0.25f;
    }
  }
}

int main() {
  init(192);
  gath(8, 96);
  return 0;
}
""",
))

register(Workload(
    name="stencil-reuse-3",
    suite="synthetic",
    description=(
        "1-D 3-point stencil over a read-only array: the window taps "
        "X[i-1] and X[i-2] provably re-read what X[i] loaded 1 and 2 "
        "iterations earlier (pure self-reuse, shift-register depth 2)"
    ),
    outputs=("Ys",),
    source="""
float Xs[256];
float Ys[256];

void init(int n) {
  for (int i = 0; i < n; i++) {
    Xs[i] = (float)((i * 9 + 4) % 21) / 20.0f;
    Ys[i] = 0.0f;
  }
}

void stencil(int n) {
  st: for (int i = 2; i < n; i++) {
    Ys[i] = Xs[i] * 0.25f + Xs[i - 1] * 0.5f + Xs[i - 2] * 0.25f;
  }
}

int main() {
  init(256);
  stencil(256);
  return 0;
}
""",
))

register(Workload(
    name="fwd-store-load",
    suite="synthetic",
    description=(
        "in-place recurrence F[i] = f(F[i-2]): the load provably reads "
        "what the store wrote two iterations earlier (store-to-load "
        "forwarding at lag 2, the group-reuse case)"
    ),
    outputs=("F",),
    source="""
float F[256];
float K[256];

void init(int n) {
  for (int i = 0; i < n; i++) {
    F[i] = (float)((i * 7 + 3) % 17) / 16.0f;
    K[i] = (float)((i * 5 + 1) % 13) / 12.0f;
  }
}

void fwd(int n) {
  acc: for (int i = 2; i < n; i++) {
    F[i] = F[i - 2] * 0.75f + K[i] * 0.25f;
  }
}

int main() {
  init(256);
  fwd(256);
  return 0;
}
""",
))

register(Workload(
    name="reuse-breaker",
    suite="synthetic",
    description=(
        "lag-2 feedback like fwd-store-load, but a store through a "
        "may-alias pointer argument lands between producer and consumer: "
        "the forwarding claim must degrade to unknown and stay "
        "unexploited"
    ),
    outputs=("Bk",),
    source="""
float Bk[256];

void init(int n) {
  for (int i = 0; i < n; i++) {
    Bk[i] = (float)((i * 11 + 2) % 19) / 18.0f;
  }
}

void brk(float *alias, int n) {
  acc: for (int i = 2; i < n; i++) {
    Bk[i] = Bk[i - 2] * 0.5f + 0.25f;
    alias[i - 1] = Bk[i] * 0.125f;
  }
}

int main() {
  init(256);
  brk(Bk, 256);
  return 0;
}
""",
))
