"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <file.c>``   — full Cayman flow on a mini-C program; prints the
  Pareto front and the best solutions under the paper's budgets.
* ``table2``         — regenerate the paper's Table II (optionally a subset).
* ``fig6``           — regenerate the paper's Fig. 6 Pareto-front series.
* ``table1``         — print the Table I capability matrix.
* ``dump <file.c>``  — compile and print the optimized IR and the wPST.
* ``lint <file.c>``  — run the static diagnostics engine (Cayman Lint).
* ``trace <file.c>`` — run the flow with telemetry; print/export the trace.
* ``bench-list``     — list the available benchmark workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _read_program(args) -> str:
    """The program text: a registered workload or a mini-C file."""
    if getattr(args, "workload", None):
        from .workloads import get_workload

        return get_workload(args.workload).source
    if not args.source:
        raise SystemExit("error: provide a source file or --workload NAME")
    with open(args.source) as handle:
        return handle.read()


def _cmd_run(args) -> int:
    from .framework import Cayman
    from .hls import CVA6_TILE_AREA_UM2

    source = _read_program(args)
    framework = Cayman(
        alpha=args.alpha,
        beta=args.beta,
        coupled_only=args.coupled_only,
        merging=not args.no_merging,
    )
    result = framework.run(
        source, entry=args.entry, name=args.source or args.workload
    )
    print(f"profiled time: {result.total_seconds * 1e6:.1f} us; "
          f"framework runtime: {result.runtime_seconds:.2f} s")
    print("\npareto front (area ratio vs CVA6, speedup):")
    for area, speedup in result.pareto_points():
        print(f"  {area:8.4f}  {speedup:8.2f}x")
    for budget in args.budgets:
        best = result.best_under_budget(budget)
        print(f"\nbudget {budget:.0%}: speedup "
              f"{best.speedup(result.total_seconds):.2f}x, "
              f"area {best.area_after / CVA6_TILE_AREA_UM2:.3f}, "
              f"merge saving {best.saving_pct:.0f}%")
        for accel in best.solution.accelerators:
            print(f"  {accel.describe()}")
    return 0


def _make_runner(args):
    """ComparisonRunner honoring the shared --cache-dir/--jobs options."""
    from .reporting import ComparisonRunner

    return ComparisonRunner(cache_dir=getattr(args, "cache_dir", None))


def _cmd_table2(args) -> int:
    from .reporting import (
        generate_table2, render_table2, table2_to_csv, table2_to_json,
    )

    names = args.benchmarks or None
    rows = generate_table2(
        names,
        runner=_make_runner(args),
        progress=(
            (lambda name: print(f"  {name}...", file=sys.stderr, flush=True))
            if not args.quiet else None
        ),
        jobs=args.jobs,
    )
    if args.format == "csv":
        print(table2_to_csv(rows), end="")
    elif args.format == "json":
        print(table2_to_json(rows))
    else:
        print(render_table2(rows))
    return 0


def _cmd_fig6(args) -> int:
    from .reporting import (
        DEFAULT_FIG6_BENCHMARKS,
        figure6_to_csv,
        figure6_to_json,
        generate_figure6,
        render_figure6,
    )

    names = args.benchmarks or DEFAULT_FIG6_BENCHMARKS
    series = generate_figure6(names, runner=_make_runner(args), jobs=args.jobs)
    if args.format == "csv":
        print(figure6_to_csv(series), end="")
    elif args.format == "json":
        print(figure6_to_json(series))
    else:
        print(render_figure6(series))
    return 0


def _cmd_table1(args) -> int:
    from .reporting import render_table1

    print(render_table1())
    return 0


def _cmd_dump(args) -> int:
    from .analysis import WPST
    from .frontend import compile_source
    from .ir import print_module

    with open(args.source) as handle:
        source = handle.read()
    module = compile_source(source, args.source, optimize=not args.no_opt)
    print(print_module(module))
    print()
    print(WPST(module, entry_function=args.entry).dump())
    return 0


def _cmd_emit_rtl(args) -> int:
    from .framework import Cayman
    from .rtl import generate_solution

    source = _read_program(args)
    result = Cayman().run(
        source, entry=args.entry, name=args.source or args.workload
    )
    best = result.best_under_budget(args.budget)
    if best.solution.is_empty:
        print("no profitable accelerators under that budget", file=sys.stderr)
        return 1
    if args.reusable:
        from .rtl import generate_reusable_accelerator

        parts = [
            generate_reusable_accelerator(best, index, f"{args.top}_grp{index}")
            for index in range(len(best.accelerators))
        ]
        text = "\n\n".join(parts)
    else:
        text = generate_solution(best.solution, name=args.top)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        print(text)
    return 0


def _cmd_exec(args) -> int:
    import time

    from .frontend import compile_source

    source = _read_program(args)
    name = args.source or args.workload
    module = compile_source(source, name, optimize=not args.no_opt)
    entry_args = [int(a) for a in args.args]
    started = time.perf_counter()
    if args.sanitize:
        from .interp.sanitizer import SanitizerError, SanitizingInterpreter

        interp = SanitizingInterpreter(
            module,
            assume_restrict=args.assume_restrict,
            fail_fast=False,
            inject_unsound_bitwidth=args.inject_unsound_bitwidth,
            inject_unsound_dependence=args.inject_unsound_dependence,
            inject_unsound_banking=args.inject_unsound_banking,
            inject_unsound_reuse=args.inject_unsound_reuse,
            engine=args.engine,
        )
        try:
            result = interp.run(args.entry, entry_args)
        except SanitizerError:  # pragma: no cover - fail_fast disabled
            result = None
        wall = time.perf_counter() - started
        print(f"result: {result}")
        print(f"{interp.instructions} instructions in {wall:.3f}s "
              f"({interp.instructions / wall:,.0f} inst/s)")
        print(interp.report())
        return 1 if interp.violations else 0
    from .interp.interpreter import Interpreter

    bounds = None
    if not args.no_elide:
        from .dataflow import BoundsAnalysis

        bounds = BoundsAnalysis(module)
    interp = Interpreter(module, bounds=bounds, engine=args.engine)
    result = interp.run(args.entry, entry_args)
    wall = time.perf_counter() - started
    print(f"result: {result}")
    print(f"{interp.instructions} instructions in {wall:.3f}s "
          f"({interp.instructions / wall:,.0f} inst/s)")
    if bounds is not None:
        proven, total = bounds.module_coverage()
        print(f"bounds: {proven}/{total} accesses statically proven; "
              f"{interp.elided_accesses} elided, "
              f"{interp.checked_accesses} checked at runtime")
    return 0


def _cmd_bitwidth(args) -> int:
    from .dataflow import ModuleBitwidthAnalysis
    from .frontend import compile_source

    source = _read_program(args)
    name = args.source or args.workload
    module = compile_source(source, name, optimize=not args.no_opt)
    analysis = ModuleBitwidthAnalysis(module)
    total = {
        "int_ops": 0, "narrowed_ops": 0, "type_bits": 0, "proven_bits": 0,
        "type_area_um2": 0.0, "proven_area_um2": 0.0,
    }
    print(f"{'function':24} {'int ops':>8} {'narrowed':>9} "
          f"{'bits':>13} {'fu area um2':>20} {'saved':>7}")
    for func in module.defined_functions():
        summary = analysis.function_summary(func)
        for key in total:
            total[key] += summary[key]
        saved = summary["type_area_um2"] - summary["proven_area_um2"]
        pct = (100.0 * saved / summary["type_area_um2"]
               if summary["type_area_um2"] else 0.0)
        print(f"@{func.name:23} {summary['int_ops']:8d} "
              f"{summary['narrowed_ops']:9d} "
              f"{summary['type_bits']:6d}->{summary['proven_bits']:<6d} "
              f"{summary['type_area_um2']:9.0f}->{summary['proven_area_um2']:<9.0f} "
              f"{pct:6.1f}%")
    saved = total["type_area_um2"] - total["proven_area_um2"]
    pct = (100.0 * saved / total["type_area_um2"]
           if total["type_area_um2"] else 0.0)
    print(f"{'total':24} {total['int_ops']:8d} {total['narrowed_ops']:9d} "
          f"{total['type_bits']:6d}->{total['proven_bits']:<6d} "
          f"{total['type_area_um2']:9.0f}->{total['proven_area_um2']:<9.0f} "
          f"{pct:6.1f}%")
    print(f"\nestimated datapath FU area delta: -{saved:.0f} um2 "
          f"({pct:.1f}% of the type-width datapath)")
    return 0


def _json_envelope(tool: str, workload, data) -> str:
    """Shared ``--json`` envelope of the analysis subcommands.

    Every analysis tool (``deps``, ``banks``, ``reuse``) emits the same
    top-level shape — ``{"tool", "estimator_version", "workload",
    "data"}`` — so downstream consumers can dispatch on ``tool`` and
    detect model drift via ``estimator_version`` without per-command
    parsers.
    """
    import json

    from .model.estimator import ESTIMATOR_VERSION

    return json.dumps(
        {
            "tool": tool,
            "estimator_version": ESTIMATOR_VERSION,
            "workload": workload,
            "data": data,
        },
        indent=2,
    )


def _cmd_deps(args) -> int:

    from .dataflow import ModuleIntervalAnalysis, PointsToAnalysis
    from .frontend import compile_source
    from .model.estimator import FunctionContext

    source = _read_program(args)
    name = args.source or args.workload
    module = compile_source(source, name, optimize=not args.no_opt)
    intervals = ModuleIntervalAnalysis(module)
    points_to = PointsToAnalysis(module)

    def access_label(info):
        inst_name = info.inst.name or "?"
        base = getattr(info.base, "name", None) or "?"
        return f"{info.inst.opcode} %{inst_name}[{base}]"

    report = {"program": name, "functions": []}
    for func in module.defined_functions():
        ctx = FunctionContext(func, points_to=points_to, intervals=intervals)
        func_entry = {"name": func.name, "loops": []}
        for loop in sorted(ctx.loop_info.loops, key=lambda l: l.name):
            deps = []
            for dep in ctx.memdep.loop_carried(loop):
                vector = dep.vector
                deps.append({
                    "kind": dep.kind,
                    "source": access_label(dep.source),
                    "sink": access_label(dep.sink),
                    "distance": dep.distance,
                    "exact": vector.exact if vector is not None else False,
                    "via_alias": dep.via_alias,
                    "vector": str(vector) if vector is not None else None,
                    "levels": [
                        {
                            "loop": entry.loop.name,
                            "direction": entry.direction,
                            "distance": entry.distance,
                            "exact": entry.exact,
                        }
                        for entry in (vector.entries if vector else ())
                    ],
                })
            func_entry["loops"].append({
                "name": loop.name,
                "depth": loop.depth,
                "innermost": loop.is_innermost,
                "deps": deps,
            })
        report["functions"].append(func_entry)

    carried = sum(
        len(loop["deps"]) for f in report["functions"] for loop in f["loops"]
    )
    proven = sum(
        1 for f in report["functions"] for loop in f["loops"]
        for d in loop["deps"] if d["distance"] is not None
    )
    exact = sum(
        1 for f in report["functions"] for loop in f["loops"]
        for d in loop["deps"] if d["vector"] is not None and d["exact"]
    )
    report["summary"] = {
        "carried_deps": carried, "proven_distance": proven,
        "exact_vectors": exact,
    }

    if args.json:
        print(_json_envelope("deps", name, report))
        return 0

    for func_entry in report["functions"]:
        loops = func_entry["loops"]
        if not loops:
            continue
        print(f"@{func_entry['name']}")
        for loop in loops:
            inner = " innermost" if loop["innermost"] else ""
            print(f"  loop {loop['name']} (depth {loop['depth']}{inner})")
            if not loop["deps"]:
                print("    no carried dependences")
                continue
            for d in loop["deps"]:
                dist = "?" if d["distance"] is None else str(d["distance"])
                vec = d["vector"] or "-"
                tags = []
                if d["exact"]:
                    tags.append("exact")
                if d["via_alias"]:
                    tags.append("via-alias")
                tag = f"  [{', '.join(tags)}]" if tags else ""
                print(f"    {d['kind']:6} {d['source']} -> {d['sink']}  "
                      f"vector {vec}  distance {dist}{tag}")
    s = report["summary"]
    print(f"deps: {s['carried_deps']} carried, "
          f"{s['proven_distance']} with proven distance, "
          f"{s['exact_vectors']} exact vectors")
    return 0


def _cmd_banks(args) -> int:
    from .analysis.banking import probe_function
    from .dataflow import ModuleIntervalAnalysis, PointsToAnalysis
    from .frontend import compile_source
    from .ir import GlobalVariable
    from .model.estimator import FunctionContext

    source = _read_program(args)
    name = args.source or args.workload
    module = compile_source(source, name, optimize=not args.no_opt)
    intervals = ModuleIntervalAnalysis(module)
    points_to = PointsToAnalysis(module)

    report = {"program": name, "functions": []}
    for func in module.defined_functions():
        ctx = FunctionContext(func, points_to=points_to, intervals=intervals)
        probes = probe_function(
            ctx.access, ctx.loop_info, ctx.memdep,
            intervals=intervals.for_function(func),
            bases=(GlobalVariable,),
        )
        if not probes:
            continue
        report["functions"].append({
            "name": func.name,
            "groups": [probe.to_dict() for probe in probes],
        })

    groups = [g for f in report["functions"] for g in f["groups"]]
    report["summary"] = {
        "groups": len(groups),
        "proven": sum(1 for g in groups if g["best"] is not None),
        "serialized": sum(1 for g in groups if g["best"] is None),
    }

    if args.json:
        print(_json_envelope("banks", name, report))
        return 0

    for func_entry in report["functions"]:
        print(f"@{func_entry['name']}")
        for group in func_entry["groups"]:
            chosen = group["best"] or "serialized (no proof)"
            print(f"  loop {group['loop']} x{group['factor']} "
                  f"@{group['base']}: {chosen}  "
                  f"({group['lanes']} lanes, word {group['word_bytes']}B)")
            for scheme in group["schemes"]:
                print(f"    {scheme['scheme']:10} "
                      f"{scheme['status']:13} {scheme['reason']}")
    s = report["summary"]
    print(f"banks: {s['groups']} group probes, {s['proven']} proven "
          f"conflict-free, {s['serialized']} serialized")
    return 0


def _cmd_reuse(args) -> int:
    from .analysis.reuse import probe_function
    from .dataflow import ModuleIntervalAnalysis, PointsToAnalysis
    from .frontend import compile_source
    from .ir import GlobalVariable
    from .model.estimator import FunctionContext

    source = _read_program(args)
    name = args.source or args.workload
    module = compile_source(source, name, optimize=not args.no_opt)
    intervals = ModuleIntervalAnalysis(module)
    points_to = PointsToAnalysis(module)

    report = {"program": name, "functions": []}
    for func in module.defined_functions():
        ctx = FunctionContext(func, points_to=points_to, intervals=intervals)
        probes = probe_function(
            ctx.access, ctx.loop_info, ctx.memdep,
            intervals=intervals.for_function(func),
            bases=(GlobalVariable,),
        )
        if not probes:
            continue
        report["functions"].append({
            "name": func.name,
            "groups": [probe.to_dict() for probe in probes],
        })

    groups = [g for f in report["functions"] for g in f["groups"]]
    report["summary"] = {
        "groups": len(groups),
        "pairs_proven": sum(len(g["pairs"]) for g in groups),
        "pairs_unknown": sum(len(g["unknown"]) for g in groups),
        "pairs_broken": sum(len(g["broken"]) for g in groups),
    }

    if args.json:
        print(_json_envelope("reuse", name, report))
        return 0

    for func_entry in report["functions"]:
        print(f"@{func_entry['name']}")
        for group in func_entry["groups"]:
            print(f"  loop {group['loop']} @{group['base']}: "
                  f"{len(group['pairs'])} proven pair(s)")
            for pair in group["pairs"]:
                trip = (f"  (trip {pair['trip']})"
                        if pair["trip"] is not None else "")
                print(f"    {pair['kind']:7} %{pair['producer']} -> "
                      f"%{pair['consumer']}  distance "
                      f"{pair['distance']}{trip}")
            for cand in group["unknown"]:
                prod = f"%{cand['producer']} -> " if cand["producer"] else ""
                print(f"    unknown {prod}%{cand['consumer']}: "
                      f"{cand['reason']}")
            for cand in group["broken"]:
                print(f"    broken  %{cand['producer']} -> "
                      f"%{cand['consumer']}: {cand['reason']}")
    s = report["summary"]
    print(f"reuse: {s['groups']} group probes, {s['pairs_proven']} proven "
          f"pair(s), {s['pairs_unknown']} unknown, "
          f"{s['pairs_broken']} broken")
    return 0


def _cmd_lint(args) -> int:
    from .diagnostics import render_json, render_text, run_lint
    from .frontend import compile_source

    if args.explain:
        from .diagnostics.registry import all_rules, get_rule

        if args.explain.strip().lower() == "all":
            rules = all_rules()
        else:
            rules = []
            for code in args.explain.split(","):
                code = code.strip()
                if not code:
                    continue
                try:
                    rules.append(get_rule(code))
                except KeyError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
        for index, found in enumerate(rules):
            if index:
                print()
            print(f"{found.code} [{found.severity.name.lower()}] {found.name}")
            print(f"layer: {found.layer}")
            if found.requires:
                print(f"requires: {', '.join(sorted(found.requires))}")
            if found.paper_ref:
                print(f"paper: {found.paper_ref}")
            print()
            print(found.description)
        return 0

    source = _read_program(args)
    name = args.source or args.workload
    module = compile_source(source, name, optimize=not args.no_opt)
    profile = wpst = model = None
    if not args.no_profile:
        from .analysis import WPST
        from .interp.profiler import profile_module
        from .model.estimator import AcceleratorModel

        profile = profile_module(module, entry=args.entry)
        wpst = WPST(module, entry_function=args.entry)
        model = AcceleratorModel(module, profile)
    result = run_lint(module, profile=profile, wpst=wpst, model=model)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code(strict=args.strict)


def _cmd_bench(args) -> int:
    import time

    from .reporting.bench import (
        BenchCache,
        EvaluationEngine,
        FlowParams,
        area_narrowing_stats,
        build_report,
        compare_reports,
        default_tag,
        interp_elision_stats,
        load_report,
        pipeline_ii_stats,
        reuse_buffers_stats,
        spad_banking_stats,
        write_report,
    )
    from .workloads import all_workloads

    if args.benchmarks:
        names = list(args.benchmarks)
    else:
        workloads = all_workloads()
        if args.suite:
            workloads = [w for w in workloads if w.suite == args.suite]
            if not workloads:
                raise SystemExit(f"error: no workloads in suite {args.suite!r}")
        names = [w.name for w in workloads]

    params = FlowParams(
        alpha=args.alpha,
        beta=args.beta,
        prune_threshold=args.prune_threshold,
        budgets=tuple(args.budgets),
    )
    cache = None if args.no_cache else BenchCache(args.cache_dir)
    engine = EvaluationEngine(params, cache=cache)

    def progress(name: str, status: str) -> None:
        if not args.quiet and status in ("hit", "run"):
            print(f"  {name}: {'cache hit' if status == 'hit' else 'running'}",
                  file=sys.stderr, flush=True)

    started = time.perf_counter()
    records = engine.evaluate(names, jobs=args.jobs, progress=progress)
    wall = time.perf_counter() - started

    elision = None
    if not args.no_interp_bench:
        # Before/after interpreter throughput with bounds-check elision,
        # probed on a bounded prefix to keep full-suite runs fast.
        elision = interp_elision_stats(names[: args.interp_bench_count])

    narrowing = None
    if not args.no_area_narrowing:
        # Type-width vs proven-width datapath area at equal latency,
        # bounded the same way as the elision probe.
        narrowing = area_narrowing_stats(names[: args.area_narrowing_count])

    pipeline_ii = None
    if not args.no_pipeline_ii:
        # Legacy windowed vs dependence-vector pipeline II at equal area,
        # bounded the same way as the other probes.
        pipeline_ii = pipeline_ii_stats(names[: args.pipeline_ii_count])

    spad_banking = None
    if not args.no_spad_banking:
        # Assumed vs proven scratchpad banking pipeline II at equal area,
        # bounded the same way as the other probes.
        spad_banking = spad_banking_stats(names[: args.spad_banking_count])

    reuse_buffers = None
    if not args.no_reuse_buffers:
        # Port pressure and II with vs without proven reuse buffers,
        # bounded the same way as the other probes.
        reuse_buffers = reuse_buffers_stats(names[: args.reuse_buffers_count])

    tag = args.tag or default_tag(params)
    payload = build_report(
        records, engine, tag=tag, wall_seconds=wall, interp_elision=elision,
        area_narrowing=narrowing, pipeline_ii=pipeline_ii,
        spad_banking=spad_banking, reuse_buffers=reuse_buffers,
    )
    path = write_report(payload, directory=args.output_dir)

    top_budget = max(params.budgets)
    for record in records:
        marker = "cached" if record.name in engine.hit_names else "ran"
        speedup = record.speedup("cayman", top_budget)
        print(f"{record.suite:14} {record.name:28} {marker:6} "
              f"cayman@{top_budget:.0%} {speedup:8.2f}x")
    if elision:
        for name, stat in elision.items():
            before = stat["baseline_inst_per_s"]
            after = stat["elided_inst_per_s"]
            gain = (after / before - 1.0) * 100.0 if before else 0.0
            print(f"interp {name}: {before / 1e3:.0f}k -> {after / 1e3:.0f}k "
                  f"inst/s ({gain:+.0f}%), "
                  f"{stat['elided']}/{stat['elided'] + stat['checked']} "
                  f"accesses elided "
                  f"({stat['proven_accesses']}/{stat['total_accesses']} "
                  f"proven), compiled engine "
                  f"{stat['engine_speedup']:.1f}x over reference")
    if narrowing:
        total_type = sum(s["type_area_um2"] for s in narrowing.values())
        total_proven = sum(s["proven_area_um2"] for s in narrowing.values())
        for name, stat in narrowing.items():
            equal = "equal latency" if stat["latency_equal"] else (
                f"latency {stat['latency_type']} -> {stat['latency_proven']}")
            print(f"narrow {name}: {stat['type_area_um2']:.0f} -> "
                  f"{stat['proven_area_um2']:.0f} um2 "
                  f"(-{stat['saving_pct']:.1f}%), "
                  f"{stat['narrowed_ops']}/{stat['int_ops']} int ops "
                  f"narrowed, {equal}")
        if total_type:
            print(f"narrow aggregate: {total_type:.0f} -> {total_proven:.0f} "
                  f"um2 datapath FU area "
                  f"(-{100.0 * (1.0 - total_proven / total_type):.1f}%)")
    if pipeline_ii:
        for name, stat in pipeline_ii.items():
            print(f"pipeii {name}: II {stat['ii_before_total']} -> "
                  f"{stat['ii_after_total']} over {stat['pipelined_loops']} "
                  f"pipelined loops ({stat['improved_loops']} improved, "
                  f"equal area)")
    if spad_banking:
        for name, stat in spad_banking.items():
            print(f"banks  {name}: II {stat['ii_before_total']} -> "
                  f"{stat['ii_after_total']} over {stat['probed_loops']} "
                  f"probed loops ({stat['proven_groups']}/{stat['groups']} "
                  f"groups proven, {stat['serialized_groups']} serialized, "
                  f"equal area)")
    if reuse_buffers:
        for name, stat in reuse_buffers.items():
            print(f"reuse  {name}: ports "
                  f"{stat['ports_before_total']} -> "
                  f"{stat['ports_after_total']}, II "
                  f"{stat['ii_before_total']} -> {stat['ii_after_total']} "
                  f"over {stat['probed_loops']} probed loops "
                  f"({stat['pairs_proven']} proven pairs, "
                  f"{stat['buffered_consumers']} buffered, "
                  f"{stat['register_bits']} register bits)")
    stats = engine.cache_stats()
    print(f"\n{len(records)} workloads in {wall:.2f}s "
          f"(jobs={args.jobs}, cache hits {stats['hits']}, "
          f"misses {stats['misses']}, hit rate {stats['hit_rate']:.0%})")
    print(f"wrote {path}")

    status = 0
    if args.compare_to:
        problems = compare_reports(load_report(args.compare_to), payload)
        if problems:
            print(f"\ndeterminism check FAILED against {args.compare_to}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            status = 1
        else:
            print(f"determinism check passed against {args.compare_to}")
    if args.min_hit_rate is not None and stats["hit_rate"] < args.min_hit_rate:
        print(f"\ncache hit rate {stats['hit_rate']:.0%} below required "
              f"{args.min_hit_rate:.0%}", file=sys.stderr)
        status = 1
    return status


def _cmd_trace(args) -> int:
    from .framework import Cayman
    from .telemetry import ChromeTraceSink, JsonlSink, Telemetry

    sinks = []
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
    if args.chrome:
        sinks.append(ChromeTraceSink(args.chrome))
    tele = Telemetry(sinks=sinks)

    source = _read_program(args)
    name = args.source or args.workload
    framework = Cayman(
        alpha=args.alpha,
        beta=args.beta,
        lint=not args.no_lint,
        telemetry=tele,
    )
    result = framework.run(source, entry=args.entry, name=name)
    tele.close()

    print(f"trace of {name} "
          f"({result.runtime_seconds:.2f}s, "
          f"front size {len(result.front)})")
    print("\nspans (seconds):")
    for span in tele.walk_spans():
        attrs = ""
        if span.attrs:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            attrs = f"  [{rendered}]"
        indent = "  " * span.depth
        print(f"  {span.duration_s:9.4f}  {indent}{span.name}{attrs}")

    snapshot = tele.snapshot()
    if snapshot["counters"]:
        print("\ncounters:")
        width = max(len(key) for key in snapshot["counters"])
        for key, value in snapshot["counters"].items():
            rendered = f"{value:.3f}" if isinstance(value, float) else value
            print(f"  {key:{width}}  {rendered}")
    if snapshot["timings"]:
        print("\ntimings (count, total seconds):")
        width = max(len(key) for key in snapshot["timings"])
        for key, stats in snapshot["timings"].items():
            print(f"  {key:{width}}  {stats['count']:4d}  "
                  f"{stats['total']:.4f}")
    for path, label in ((args.jsonl, "JSONL"), (args.chrome, "Chrome trace")):
        if path:
            print(f"\nwrote {label} to {path}")
    return 0


def _cmd_bench_list(args) -> int:
    from .workloads import all_workloads

    for workload in sorted(all_workloads(), key=lambda w: (w.suite, w.name)):
        print(f"{workload.suite:14} {workload.name:28} {workload.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Cayman accelerator-generation framework"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full flow on a mini-C file")
    run.add_argument("source", nargs="?")
    run.add_argument("--workload", help="run a registered benchmark instead")
    run.add_argument("--entry", default="main")
    run.add_argument("--alpha", type=float, default=1.1)
    run.add_argument("--beta", type=float, default=4.0)
    run.add_argument("--coupled-only", action="store_true")
    run.add_argument("--no-merging", action="store_true")
    run.add_argument("--budgets", type=float, nargs="+", default=[0.25, 0.65])
    run.set_defaults(func=_cmd_run)

    table2 = sub.add_parser("table2", help="regenerate Table II")
    table2.add_argument("benchmarks", nargs="*")
    table2.add_argument("--quiet", action="store_true")
    table2.add_argument("--format", choices=["text", "csv", "json"],
                        default="text")
    table2.add_argument("-j", "--jobs", type=int, default=1,
                        help="evaluate workloads across N processes")
    table2.add_argument("--cache-dir",
                        help="reuse/populate a persistent bench cache")
    table2.set_defaults(func=_cmd_table2)

    fig6 = sub.add_parser("fig6", help="regenerate Fig. 6 series")
    fig6.add_argument("benchmarks", nargs="*")
    fig6.add_argument("--format", choices=["text", "csv", "json"],
                      default="text")
    fig6.add_argument("-j", "--jobs", type=int, default=1,
                      help="evaluate workloads across N processes")
    fig6.add_argument("--cache-dir",
                      help="reuse/populate a persistent bench cache")
    fig6.set_defaults(func=_cmd_fig6)

    table1 = sub.add_parser("table1", help="print the Table I matrix")
    table1.set_defaults(func=_cmd_table1)

    dump = sub.add_parser("dump", help="print optimized IR and wPST")
    dump.add_argument("source")
    dump.add_argument("--entry", default="main")
    dump.add_argument("--no-opt", action="store_true")
    dump.set_defaults(func=_cmd_dump)

    rtl = sub.add_parser("emit-rtl",
                         help="generate Verilog for the selected accelerators")
    rtl.add_argument("source", nargs="?")
    rtl.add_argument("--workload", help="use a registered benchmark instead")
    rtl.add_argument("--entry", default="main")
    rtl.add_argument("--budget", type=float, default=0.65)
    rtl.add_argument("--top", default="cayman_solution")
    rtl.add_argument("--reusable", action="store_true",
                     help="emit merged reusable accelerators (Fig. 5 form)")
    rtl.add_argument("-o", "--output")
    rtl.set_defaults(func=_cmd_emit_rtl)

    lint = sub.add_parser(
        "lint",
        help="run static diagnostics over a mini-C program",
        description=(
            "Compile a mini-C program (or a registered workload) and run "
            "the Cayman Lint rules over its IR, analyses, and the "
            "accelerator configurations the model would generate.  Exits "
            "1 when error-severity findings are present (with --strict, "
            "warnings also fail)."
        ),
    )
    lint.add_argument("source", nargs="?")
    lint.add_argument("--workload", help="lint a registered benchmark instead")
    lint.add_argument("--entry", default="main")
    lint.add_argument("--no-opt", action="store_true",
                      help="lint the unoptimized IR")
    lint.add_argument("--no-profile", action="store_true",
                      help="skip profiling (disables profile/wPST/config rules)")
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on warnings as well as errors")
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--explain", metavar="CODE",
                      help="print the rule-catalog entry for a diagnostic "
                           "code and exit (2 if the code is unknown)")
    lint.set_defaults(func=_cmd_lint)

    exec_ = sub.add_parser(
        "exec",
        help="interpret a program, with bounds-check elision or --sanitize",
        description=(
            "Run the reference interpreter.  By default, accesses the "
            "interval analysis proves in-bounds skip their runtime checks "
            "(--no-elide disables).  --sanitize keeps every check and "
            "cross-validates all static claims (value ranges, alias facts, "
            "dependence distances) against observed behavior, exiting 1 on "
            "any soundness violation; --assume-restrict validates the "
            "historical restrict aliasing model instead."
        ),
    )
    exec_.add_argument("source", nargs="?")
    exec_.add_argument("--workload", help="run a registered benchmark instead")
    exec_.add_argument("--entry", default="main")
    exec_.add_argument("--args", nargs="*", default=[],
                       help="integer arguments for the entry function")
    exec_.add_argument("--no-opt", action="store_true",
                       help="interpret the unoptimized IR")
    exec_.add_argument("--no-elide", action="store_true",
                       help="keep every runtime bounds check")
    exec_.add_argument("--engine", choices=["compiled", "reference"],
                       default="compiled",
                       help="execution engine: 'compiled' translates each "
                            "function to specialized closures once "
                            "(default), 'reference' is the per-instruction "
                            "dispatch oracle")
    exec_.add_argument("--sanitize", action="store_true",
                       help="validate static analysis claims at runtime")
    exec_.add_argument("--assume-restrict", action="store_true",
                       help="with --sanitize: validate the restrict model")
    exec_.add_argument("--inject-unsound-bitwidth", action="store_true",
                       help="with --sanitize: deliberately mis-claim one "
                            "known-zero bit per instruction (self-test; "
                            "the run must report violations)")
    exec_.add_argument("--inject-unsound-dependence", action="store_true",
                       help="with --sanitize: deliberately inflate every "
                            "claimed carried-dependence distance by one "
                            "(self-test; the run must report violations)")
    exec_.add_argument("--inject-unsound-banking", action="store_true",
                       help="with --sanitize: deliberately claim every "
                            "provably-conflicted banking scheme conflict-"
                            "free (self-test; the run must report "
                            "violations on conflicting workloads)")
    exec_.add_argument("--inject-unsound-reuse", action="store_true",
                       help="with --sanitize: deliberately shorten every "
                            "proven reuse-pair distance by one (self-test; "
                            "the run must report violations on reusing "
                            "workloads)")
    exec_.set_defaults(func=_cmd_exec)

    deps = sub.add_parser(
        "deps",
        help="dependence-vector table per loop nest",
        description=(
            "Run the affine dependence-vector analysis and print, per "
            "function and loop, every loop-carried memory dependence with "
            "its per-level direction/distance vector and the proven "
            "minimal carried distance."
        ),
    )
    deps.add_argument("source", nargs="?")
    deps.add_argument("--workload", help="analyze a registered benchmark")
    deps.add_argument("--no-opt", action="store_true",
                      help="analyze the unoptimized IR")
    deps.add_argument("--json", action="store_true",
                      help="machine-readable report")
    deps.set_defaults(func=_cmd_deps)

    banks = sub.add_parser(
        "banks",
        help="scratchpad bank-conflict verdicts per group",
        description=(
            "Run the static bank-conflict analysis and print, per function "
            "and unrolled loop, every scratchpad group's candidate banking "
            "schemes (cyclic/block over power-of-two factors) with its "
            "conflict-free / conflicted / unknown verdict and the cheapest "
            "proven scheme the model may rely on."
        ),
    )
    banks.add_argument("source", nargs="?")
    banks.add_argument("--workload", help="analyze a registered benchmark")
    banks.add_argument("--no-opt", action="store_true",
                       help="analyze the unoptimized IR")
    banks.add_argument("--json", action="store_true",
                       help="machine-readable probe report")
    banks.set_defaults(func=_cmd_banks)

    reuse = sub.add_parser(
        "reuse",
        help="proven inter-iteration reuse pairs per scratchpad group",
        description=(
            "Probe every call-free innermost loop's global-array groups "
            "with the data-reuse analysis: proven pairs (consumer at "
            "iteration i addresses what the producer addressed at i-d) "
            "become shift-register buffers in the accelerator model; "
            "unknown and broken candidates are reported with the reason "
            "the proof failed."
        ),
    )
    reuse.add_argument("source", nargs="?")
    reuse.add_argument("--workload", help="analyze a registered benchmark")
    reuse.add_argument("--no-opt", action="store_true",
                       help="analyze the unoptimized IR")
    reuse.add_argument("--json", action="store_true",
                       help="machine-readable report")
    reuse.set_defaults(func=_cmd_reuse)

    bitwidth = sub.add_parser(
        "bitwidth",
        help="per-function bitwidth-narrowing report",
        description=(
            "Run the known-bits ∧ demanded-bits analysis and print, per "
            "function, how many integer datapath ops narrow below their "
            "type width and the estimated functional-unit area recovered."
        ),
    )
    bitwidth.add_argument("source", nargs="?")
    bitwidth.add_argument("--workload",
                          help="analyze a registered benchmark instead")
    bitwidth.add_argument("--no-opt", action="store_true",
                          help="analyze the unoptimized IR")
    bitwidth.set_defaults(func=_cmd_bitwidth)

    bench = sub.add_parser(
        "bench",
        help="parallel, cached evaluation of the workload x flow matrix",
        description=(
            "Evaluate workloads across all four flows (full Cayman, "
            "coupled-only, NOVIA, QsCores), fanning cache misses across a "
            "process pool and persisting content-keyed records so re-runs "
            "only pay for what changed.  Writes BENCH_<tag>.json."
        ),
    )
    bench.add_argument("benchmarks", nargs="*",
                       help="workload names (default: all)")
    bench.add_argument("--suite", help="restrict to one benchmark suite")
    bench.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for cache misses")
    bench.add_argument("--cache-dir", default=".repro-cache",
                       help="persistent record cache directory")
    bench.add_argument("--no-cache", action="store_true",
                       help="disable the persistent cache")
    bench.add_argument("--tag", help="report tag (default: params digest)")
    bench.add_argument("--output-dir", default=".",
                       help="directory for BENCH_<tag>.json")
    bench.add_argument("--alpha", type=float, default=1.1)
    bench.add_argument("--beta", type=float, default=4.0)
    bench.add_argument("--prune-threshold", type=float, default=0.001)
    bench.add_argument("--budgets", type=float, nargs="+",
                       default=[0.25, 0.65])
    bench.add_argument("--compare-to", metavar="BENCH_JSON",
                       help="fail if deterministic sections differ from "
                            "a previous report")
    bench.add_argument("--min-hit-rate", type=float,
                       help="fail if the cache hit rate is below this")
    bench.add_argument("--quiet", action="store_true")
    bench.add_argument("--no-interp-bench", action="store_true",
                       help="skip the interpreter elision throughput probe")
    bench.add_argument("--interp-bench-count", type=int, default=2,
                       metavar="N",
                       help="probe elision throughput on the first N "
                            "workloads (default 2)")
    bench.add_argument("--no-area-narrowing", action="store_true",
                       help="skip the datapath-narrowing area probe")
    bench.add_argument("--area-narrowing-count", type=int, default=4,
                       metavar="N",
                       help="probe type-width vs proven-width datapath "
                            "area on the first N workloads (default 4)")
    bench.add_argument("--no-pipeline-ii", action="store_true",
                       help="skip the dependence-vector pipeline-II probe")
    bench.add_argument("--pipeline-ii-count", type=int, default=6,
                       metavar="N",
                       help="probe windowed vs dependence-vector pipeline "
                            "II on the first N workloads (default 6)")
    bench.add_argument("--no-spad-banking", action="store_true",
                       help="skip the scratchpad bank-conflict probe")
    bench.add_argument("--spad-banking-count", type=int, default=6,
                       metavar="N",
                       help="probe assumed vs proven scratchpad banking "
                            "II on the first N workloads (default 6)")
    bench.add_argument("--no-reuse-buffers", action="store_true",
                       help="skip the reuse shift-register buffer probe")
    bench.add_argument("--reuse-buffers-count", type=int, default=6,
                       metavar="N",
                       help="probe port pressure and II with vs without "
                            "proven reuse buffers on the first N workloads "
                            "(default 6)")
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="run the full flow with telemetry and print/export the trace",
        description=(
            "Run the full Cayman flow on a workload (or mini-C file) with "
            "telemetry recording enabled, then print the hierarchical span "
            "tree, the exact counters of every pipeline layer, and the "
            "wall-time histograms.  --jsonl streams spans as JSON lines; "
            "--chrome writes Chrome trace-event JSON loadable in Perfetto "
            "(ui.perfetto.dev) or chrome://tracing."
        ),
    )
    trace.add_argument("source", nargs="?")
    trace.add_argument("--workload", help="trace a registered benchmark")
    trace.add_argument("--entry", default="main")
    trace.add_argument("--alpha", type=float, default=1.1)
    trace.add_argument("--beta", type=float, default=4.0)
    trace.add_argument("--no-lint", action="store_true",
                       help="skip the lint stage")
    trace.add_argument("--jsonl", metavar="FILE",
                       help="write one JSON line per span/counter to FILE")
    trace.add_argument("--chrome", metavar="FILE",
                       help="write Chrome trace-event JSON to FILE")
    trace.set_defaults(func=_cmd_trace)

    bench_list = sub.add_parser("bench-list", help="list benchmark workloads")
    bench_list.set_defaults(func=_cmd_bench_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piping into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
