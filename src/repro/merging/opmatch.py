"""Operation matching between two datapath units (paper §III-E).

Merging two basic-block datapaths shares functional units of the same
resource class.  Integer compute ops match across *proven* widths: an
11-bit and a 14-bit adder share one 14-bit unit (the narrower member is
zero-extended onto it by a sliver of glue logic), instead of the historical
binary 32/64 bucketing.  Float ops and memory port logic keep exact width
classes — an f32 adder never absorbs an f64 one.  A matched operation pair
needs operand multiplexers unless its producers are matched to each other
as well — so the matcher greedily prefers pairs whose operands are already
matched, maximizing shared wiring and minimizing mux overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hls.dfg import DFG, DFGNode
from ..hls.techlib import CONFIG_BIT_AREA_UM2, TechLibrary

#: Integer resource classes whose instances merge at ``max(width_a,
#: width_b)`` with zero-extend glue on the narrower member's operands.
_INT_MERGEABLE = frozenset({
    "add", "sub", "and", "or", "xor", "shl", "shr", "neg", "not",
    "icmp", "select", "mul", "div", "rem", "gep", "phi",
    "sext", "zext", "trunc",
})


@dataclass
class MatchResult:
    """Outcome of matching unit B onto unit A."""

    pairs: List[Tuple[DFGNode, DFGNode]] = field(default_factory=list)
    shared_area: float = 0.0       # functional-unit area saved by sharing
    mux_area: float = 0.0          # multiplexers inserted on shared inputs
    config_bits: int = 0           # reconfiguration bit registers for muxes
    width_glue_area: float = 0.0   # zero-extend glue for width-mixed pairs
    width_recovered_area: float = 0.0  # saving the binary bucketing missed

    @property
    def net_saving(self) -> float:
        return self.shared_area - self.mux_area - self.width_glue_area - (
            self.config_bits * CONFIG_BIT_AREA_UM2
        )


def _bucket(bits: int) -> int:
    """The legacy binary width class (pre-bitwidth-analysis behavior)."""
    return 64 if bits > 32 else 32


def _op_key(node: DFGNode) -> Tuple[str, int]:
    # Integer compute ops share across widths (the shared unit is sized at
    # the max); float ops and memory port logic share by exact width class.
    if node.resource in _INT_MERGEABLE:
        return (node.resource, 0)
    return (node.resource, _bucket(node.bits))


def match_units(
    unit_a: DFG, unit_b: DFG, techlib: TechLibrary
) -> MatchResult:
    """Greedy producer-aware matching of ``unit_b``'s ops onto ``unit_a``."""
    result = MatchResult()
    by_key_a: Dict[Tuple[str, int], List[DFGNode]] = {}
    for node in unit_a.nodes:
        by_key_a.setdefault(_op_key(node), []).append(node)

    matched_a: Dict[DFGNode, DFGNode] = {}
    matched_b: Dict[DFGNode, DFGNode] = {}

    # Single pass in program order: producers precede consumers, so matched
    # producer pairs steer their consumers toward mux-free matches.
    for node_b in unit_b.nodes:
        candidates = [
            node_a
            for node_a in by_key_a.get(_op_key(node_b), [])
            if node_a not in matched_a
        ]
        if not candidates:
            continue
        best = None
        best_score = None
        for node_a in candidates:
            # Prefer already-matched producers, then the closest width (a
            # wider partner wastes shared-unit bits, a narrower one buys
            # less) — deterministic because program order breaks ties.
            score = (
                _producer_bonus(node_a, node_b, matched_b),
                -abs(node_a.bits - node_b.bits),
            )
            if best_score is None or score > best_score:
                best, best_score = node_a, score
        matched_a[best] = node_b
        matched_b[node_b] = best
        result.pairs.append((best, node_b))

    for node_a, node_b in result.pairs:
        resource = node_a.resource
        bits_a, bits_b = node_a.bits, node_b.bits
        shared_bits = max(bits_a, bits_b)
        # Sharing keeps one instance at the max width: the saving is the
        # smaller member's area.
        saved = (
            techlib.area(resource, bits_a)
            + techlib.area(resource, bits_b)
            - techlib.area(resource, shared_bits)
        )
        result.shared_area += saved
        if bits_a != bits_b:
            result.width_glue_area += techlib.area("zext", shared_bits)
        if resource in _INT_MERGEABLE:
            if _bucket(bits_a) != _bucket(bits_b):
                # The binary bucketing could not merge this pair at all.
                result.width_recovered_area += saved
            else:
                # It could, but would have billed the bucket width.
                result.width_recovered_area += (
                    techlib.area(resource, _bucket(shared_bits))
                    - techlib.area(resource, shared_bits)
                )
        # One mux per operand position whose producers differ.
        arity = max(len(node_a.preds), len(node_b.preds))
        for slot in range(arity):
            prod_a = node_a.preds[slot] if slot < len(node_a.preds) else None
            prod_b = node_b.preds[slot] if slot < len(node_b.preds) else None
            if prod_b is not None and matched_b.get(prod_b) is prod_a and prod_a is not None:
                continue  # shared wire, no mux
            result.mux_area += techlib.mux_area(shared_bits, 2)
            result.config_bits += 1
    return result


def _producer_bonus(
    node_a: DFGNode, node_b: DFGNode, matched_b: Dict[DFGNode, DFGNode]
) -> int:
    """Operand slots whose producers are already matched to each other."""
    bonus = 0
    for slot in range(min(len(node_a.preds), len(node_b.preds))):
        if matched_b.get(node_b.preds[slot]) is node_a.preds[slot]:
            bonus += 1
    return bonus


def unit_fu_area(unit: DFG, techlib: TechLibrary) -> float:
    """Raw functional-unit area of one datapath unit (no sharing)."""
    total = 0.0
    for node in unit.nodes:
        total += techlib.area(node.resource, node.bits)
    return total
