"""Runtime cross-validation of the bitwidth analysis: the sanitizer's
known-bits and demanded-bits checks stay clean on real workloads, the
deliberate unsound-claim injection is caught, and the narrowed-datapath
interpreter reproduces the plain interpreter bit-for-bit."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, NarrowingInterpreter
from repro.interp.sanitizer import SanitizerError, SanitizingInterpreter
from repro.workloads import get_workload


def sanitize(name, **kwargs):
    workload = get_workload(name)
    module = compile_source(workload.source, workload.name)
    interp = SanitizingInterpreter(module, fail_fast=False, **kwargs)
    interp.run(workload.entry)
    return interp


BITWIDTH_CROSS_SECTION = [
    "bitwidth-adversary",
    "trisolv",
    "bicg",
    "nw",
    "gramschmidt",
    "smooth-alias",
]


class TestBitwidthClaimsSound:
    @pytest.mark.parametrize("name", BITWIDTH_CROSS_SECTION)
    def test_zero_bitwidth_violations(self, name):
        interp = sanitize(name)
        assert interp.violations == []
        assert interp.bits_checked > 0

    def test_adversary_exercises_demanded_reexecution(self):
        # The LCG kernel mixes masks, shifts, casts, and negation: the
        # demanded-bits shadow re-execution must actually fire.
        interp = sanitize("bitwidth-adversary")
        assert interp.demanded_checked > 0


class TestUnsoundInjectionCaught:
    def test_injected_claim_fails_on_adversary(self):
        """Marking one unknown bit per instruction as known-zero is a
        deliberately unsound claim; the alternating-parity LCG state must
        expose it at runtime."""
        interp = sanitize("bitwidth-adversary", inject_unsound_bitwidth=True)
        assert any(v.startswith("known-bits") for v in interp.violations)

    def test_injection_is_recorded_as_note(self):
        interp = sanitize("bitwidth-adversary", inject_unsound_bitwidth=True)
        assert any("inject" in note for note in interp.notes)

    def test_fail_fast_raises_on_injection(self):
        workload = get_workload("bitwidth-adversary")
        module = compile_source(workload.source, workload.name)
        interp = SanitizingInterpreter(module, inject_unsound_bitwidth=True)
        with pytest.raises(SanitizerError):
            interp.run(workload.entry)


NARROWING_WORKLOADS = ["trisolv", "bicg", "nw", "bitwidth-adversary"]


class TestNarrowingInterpreter:
    @pytest.mark.parametrize("name", NARROWING_WORKLOADS)
    def test_outputs_bit_identical(self, name):
        workload = get_workload(name)
        module = compile_source(workload.source, workload.name)
        plain = Interpreter(module)
        plain_result = plain.run(workload.entry)
        narrowed = NarrowingInterpreter(module)
        narrowed_result = narrowed.run(workload.entry)
        assert narrowed_result == plain_result
        assert bytes(narrowed.memory.data) == bytes(plain.memory.data)

    @pytest.mark.parametrize("name", NARROWING_WORKLOADS)
    def test_narrowing_actually_happens(self, name):
        workload = get_workload(name)
        module = compile_source(workload.source, workload.name)
        narrowed = NarrowingInterpreter(module)
        narrowed.run(workload.entry)
        assert narrowed.narrowed_results > 0
