"""Processor–accelerator data access interface models (paper §III-C, Fig. 3).

Three interface types are modeled per memory-access operation:

* **coupled** — the access goes through the accelerator's shared load/store
  unit to the memory system; the accelerator stalls for the round trip and
  all coupled accesses contend on the single LSU port.
* **decoupled** — a dedicated address generation unit (AGU) runs ahead and a
  FIFO buffers data, hiding the memory latency; only legal for *stream*
  accesses; costs AGU + FIFO area per access.
* **scratchpad** — a dedicated buffer caches the access footprint inside the
  accelerator; data moves via DMA before/after execution; the buffer can be
  partitioned for parallel access; costs SRAM + DMA area.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir import Instruction, Load
from ..hls.dfg import DFGNode
from ..hls.scheduling import AccessTiming
from ..hls.techlib import (
    AGU_AREA_UM2,
    SCANCHAIN_OCCUPANCY,
    COUPLED_LOAD_LATENCY,
    COUPLED_STORE_LATENCY,
    DECOUPLED_LATENCY,
    DMA_AREA_UM2,
    FIFO_AREA_UM2,
    LSU_AREA_UM2,
    SCANCHAIN_LATENCY,
    SPAD_LATENCY,
    TechLibrary,
)


class InterfaceKind(enum.Enum):
    """The three specialized interfaces, plus the baselines' scan chain."""

    COUPLED = "coupled"
    DECOUPLED = "decoupled"
    SCRATCHPAD = "scratchpad"
    SCANCHAIN = "scanchain"  # QsCores-style slow interface (baseline only)

    @property
    def short(self) -> str:
        return {"coupled": "C", "decoupled": "D", "scratchpad": "S",
                "scanchain": "X"}[self.value]


@dataclass
class InterfaceAssignment:
    """Interface decision for one memory-access instruction."""

    inst: Instruction
    kind: InterfaceKind
    #: Base object key for scratchpad grouping (accesses to one object share
    #: one buffer).
    spad_group: Optional[object] = None
    #: Scratchpad footprint in bytes (sizing the buffer), per invocation.
    spad_bytes: int = 0
    #: Scratchpad bank partitioning (banks built — the area claim).
    partitions: int = 1
    #: The banking scheme backing ``partitions`` (a
    #: :class:`~repro.analysis.banking.BankingScheme`), or None when the
    #: partitioning is a bare claim with no scheme attached.
    banking: Optional[object] = None
    #: Whether a :class:`~repro.analysis.banking.BankingVerdict` proved the
    #: scheme conflict-free.  Unproven partitions still cost their area but
    #: the scheduler only gets one dual-ported bank's worth of ports, so the
    #: group's unrolled accesses serialize (see ``port_counts``).
    banking_proven: bool = True
    #: The full verdict, when the estimator ran the analysis (diagnostics).
    banking_verdict: Optional[object] = None
    #: Proven inter-iteration reuse: when ``reuse_distance`` is set, this
    #: load is fed from a shift-register tap ``reuse_distance`` iterations
    #: behind ``reuse_source`` (the producer access instruction) instead of
    #: a scratchpad port — only ever set from a *proven*
    #: :class:`~repro.analysis.reuse.ReusePair`, never assumed.
    reuse_source: Optional[Instruction] = None
    reuse_distance: Optional[int] = None
    #: Register stages this consumer needs on the producer's chain
    #: (distance + lanes − 1); the deepest consumer prices the chain.
    reuse_depth: int = 0
    #: Bits per register stage (the element width).
    reuse_bits: int = 0

    @property
    def is_load(self) -> bool:
        return isinstance(self.inst, Load)

    @property
    def reuse_buffered(self) -> bool:
        return (
            self.kind is InterfaceKind.SCRATCHPAD
            and self.reuse_distance is not None
        )

    @property
    def proven_partitions(self) -> int:
        """Banks the scheduler may actually use in parallel."""
        return max(1, self.partitions) if self.banking_proven else 1


@dataclass
class InterfacePlan:
    """All interface assignments of one accelerator."""

    assignments: Dict[Instruction, InterfaceAssignment] = field(default_factory=dict)

    def assign(self, assignment: InterfaceAssignment) -> None:
        self.assignments[assignment.inst] = assignment

    def of(self, inst: Instruction) -> InterfaceAssignment:
        return self.assignments[inst]

    def counts(self) -> Dict[str, int]:
        """Interface usage counts — the #C/#D/#S columns of Table II."""
        counts = {"coupled": 0, "decoupled": 0, "scratchpad": 0, "scanchain": 0}
        for assignment in self.assignments.values():
            counts[assignment.kind.value] += 1
        return counts

    def spad_port_names(self) -> Dict[object, str]:
        """Stable scratchpad port name per group.

        Groups are numbered by first-assignment order (assignments are made
        in deterministic block order), and labeled with the base object's
        name — never ``id()``, so traces, reports, and cache keys reproduce
        across processes.
        """
        cache = getattr(self, "_port_name_cache", None)
        if cache is not None and cache[0] == len(self.assignments):
            return cache[1]
        names: Dict[object, str] = {}
        for assignment in self.assignments.values():
            if assignment.kind is not InterfaceKind.SCRATCHPAD:
                continue
            group = assignment.spad_group
            if group not in names:
                label = getattr(group, "name", None) or "g"
                names[group] = f"spad:{len(names)}:{label}"
        self._port_name_cache = (len(self.assignments), names)
        return names

    # Scheduling hooks -------------------------------------------------------------

    def access_timing(self, node: DFGNode) -> AccessTiming:
        """Latency/port view of one DFG memory node for the scheduler."""
        assignment = self.assignments.get(node.inst)
        if assignment is None:
            # Unassigned accesses default to the coupled path.
            kind = InterfaceKind.COUPLED
            partitions = 1
            group = None
        else:
            kind = assignment.kind
            partitions = assignment.partitions
            group = assignment.spad_group
        if kind is InterfaceKind.COUPLED:
            latency = (
                COUPLED_LOAD_LATENCY if isinstance(node.inst, Load)
                else COUPLED_STORE_LATENCY
            )
            return AccessTiming(latency=latency, port="lsu", occupancy=1)
        if kind is InterfaceKind.DECOUPLED:
            return AccessTiming(latency=DECOUPLED_LATENCY, port=None)
        if kind is InterfaceKind.SCRATCHPAD:
            if assignment is not None and assignment.reuse_buffered:
                # Proven reuse: the value comes from a register tap of the
                # producer's shift chain — single-cycle, no port pressure.
                return AccessTiming(latency=1, port=None)
            return AccessTiming(
                latency=SPAD_LATENCY, port=self.spad_port_names()[group],
                occupancy=1,
            )
        return AccessTiming(
            latency=SCANCHAIN_LATENCY, port="scan", occupancy=SCANCHAIN_OCCUPANCY
        )

    def port_counts(self) -> Dict[str, int]:
        """Port multiplicities for the scheduler / ResMII.

        Scratchpad ports come from the *proven* parallelism, not the claimed
        partitioning: a group whose banking scheme has no conflict-free
        proof exposes one dual-ported bank (2 ports), so its unrolled
        accesses serialize through the port table instead of being assumed
        parallel.
        """
        ports: Dict[str, int] = {"lsu": 1, "scan": 1}
        names = self.spad_port_names()
        for assignment in self.assignments.values():
            if assignment.kind is InterfaceKind.SCRATCHPAD:
                key = names[assignment.spad_group]
                # Dual-ported banks: proven banks x 2 ports each.
                ports[key] = max(
                    ports.get(key, 0), 2 * assignment.proven_partitions
                )
        return ports

    # Area / transfer cost ------------------------------------------------------------

    def interface_area(self, techlib: TechLibrary) -> float:
        """Total interface area of the plan.

        Coupled accesses share one LSU; each decoupled access owns an
        AGU + FIFO; each scratchpad *group* owns one (partitioned) buffer
        plus a DMA engine.
        """
        area = 0.0
        counts = self.counts()
        if counts["coupled"] > 0:
            area += LSU_AREA_UM2
        area += counts["decoupled"] * (AGU_AREA_UM2 + FIFO_AREA_UM2)
        if counts["scanchain"] > 0:
            area += LSU_AREA_UM2  # scan-chain master
        for group, assignments in self._spad_groups().items():
            bytes_ = max(a.spad_bytes for a in assignments)
            partitions = max(a.partitions for a in assignments)
            # Banking adds per-bank overhead: model as sizing each bank for
            # its share plus the SRAM base cost per bank.
            per_bank = -(-bytes_ // max(1, partitions))
            area += sum(
                techlib.scratchpad_area(per_bank) for _ in range(max(1, partitions))
            )
            area += DMA_AREA_UM2
        area += self.reuse_register_area(techlib)
        return area

    def reuse_register_area(self, techlib: TechLibrary) -> float:
        """Shift-register area of every exploited reuse chain.

        Consumers fed by the same producer share one chain; the deepest
        tap (lane-aware) sizes it, priced per register stage."""
        chains: Dict[tuple, List[InterfaceAssignment]] = {}
        for assignment in self.assignments.values():
            if assignment.reuse_buffered:
                key = (assignment.spad_group, assignment.reuse_source)
                chains.setdefault(key, []).append(assignment)
        area = 0.0
        for members in chains.values():
            depth = max(m.reuse_depth for m in members)
            bits = max(m.reuse_bits for m in members)
            area += techlib.register_area(bits) * depth
        return area

    def dma_cycles_per_invocation(self, techlib: TechLibrary) -> float:
        """DMA synchronization cycles before/after one kernel invocation."""
        total = 0.0
        for group, assignments in self._spad_groups().items():
            bytes_ = max(a.spad_bytes for a in assignments)
            reads = any(a.is_load for a in assignments)
            writes = any(not a.is_load for a in assignments)
            directions = (1 if reads else 0) + (1 if writes else 0)
            total += directions * techlib.dma_cycles(bytes_)
        return total

    def _spad_groups(self) -> Dict[object, List[InterfaceAssignment]]:
        groups: Dict[object, List[InterfaceAssignment]] = {}
        for assignment in self.assignments.values():
            if assignment.kind is InterfaceKind.SCRATCHPAD:
                groups.setdefault(assignment.spad_group, []).append(assignment)
        return groups
