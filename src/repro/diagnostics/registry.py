"""Rule registry: every diagnostic rule registers itself here.

A rule is a checker function plus metadata (stable code, default severity,
the layer it runs on, and its rationale).  Layers:

* ``ir``       — checkers run per module over the IR (signature
  ``fn(ctx) -> Iterable[Diagnostic]``);
* ``analysis`` — checkers over the wPST / program analyses (same signature;
  may require a profile or wPST, declared via ``requires``);
* ``config``   — accelerator-configuration legality checkers (signature
  ``fn(config, env) -> Iterable[Diagnostic]``), also used by the
  candidate-selection pre-filter;
* ``merge``    — checkers over a pair of datapath units considered for
  merging (signature ``fn(name_a, dfg_a, name_b, dfg_b) -> Iterable``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from .core import Severity

LAYERS = ("ir", "analysis", "config", "merge")


@dataclass(frozen=True)
class Rule:
    """Metadata plus checker for one diagnostic rule."""

    code: str
    name: str
    layer: str
    severity: Severity
    description: str
    paper_ref: str = ""
    requires: FrozenSet[str] = field(default_factory=frozenset)
    checker: Optional[Callable] = None


_RULES: Dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    layer: str,
    severity: Severity,
    description: str,
    paper_ref: str = "",
    requires=(),
):
    """Decorator registering a checker function as a diagnostic rule."""
    if layer not in LAYERS:
        raise ValueError(f"unknown rule layer {layer!r}")

    def decorate(fn: Callable) -> Callable:
        if code in _RULES:
            raise ValueError(f"duplicate rule code {code}")
        _RULES[code] = Rule(
            code=code,
            name=name,
            layer=layer,
            severity=severity,
            description=description,
            paper_ref=paper_ref,
            requires=frozenset(requires),
            checker=fn,
        )
        fn.rule_code = code
        return fn

    return decorate


def _ensure_loaded() -> None:
    """Import the rule modules so their decorators run."""
    from . import analysis_rules, config_rules, ir_rules  # noqa: F401


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return sorted(_RULES.values(), key=lambda r: r.code)


def rules_for_layer(layer: str) -> List[Rule]:
    return [r for r in all_rules() if r.layer == layer]


def get_rule(code: str) -> Rule:
    _ensure_loaded()
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; registered: {sorted(_RULES)}"
        ) from None
