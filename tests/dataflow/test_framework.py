"""Engine-level tests of the forward-dataflow worklist solver."""

from repro.analysis.cfg import reverse_postorder
from repro.dataflow import ForwardDataflow
from repro.frontend import compile_source


class PathLength(ForwardDataflow):
    """Toy client: longest acyclic path length from entry (join = max).

    On cyclic CFGs the transfer keeps incrementing, so convergence depends
    entirely on the engine applying :meth:`widen` at loop headers.
    """

    CAP = 1_000_000

    def __init__(self, func):
        self.widened_at = []
        super().__init__(func)

    def initial_state(self):
        return 0

    def transfer(self, block, state):
        return state + 1

    def join(self, a, b):
        return max(a, b)

    def widen(self, old, new, block=None):
        self.widened_at.append(block)
        return self.CAP


def func_of(source, name):
    module = compile_source(source, "t", optimize=False)
    return module.get_function(name)


DIAMOND = """
int f(int c) {
  int x = 0;
  if (c > 0) { x = 1; } else { x = 2; }
  return x;
}
"""

LOOPY = """
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}
"""


class TestAcyclic:
    def test_no_widening_on_acyclic_cfg(self):
        func = func_of(DIAMOND, "f")
        analysis = PathLength(func).solve()
        assert analysis.widened_at == []

    def test_path_lengths_follow_cfg(self):
        func = func_of(DIAMOND, "f")
        analysis = PathLength(func).solve()
        # Entry starts at the initial state; every block adds one.
        assert analysis.in_states[func.entry] == 0
        assert analysis.out_states[func.entry] == 1
        exit_block = [b for b in analysis.rpo if not b.successors][0]
        # join(max) over both arms of the diamond, +1 for the exit itself.
        depth = max(analysis.out_states[p] for p in analysis.preds[exit_block])
        assert analysis.out_states[exit_block] == depth + 1


class TestCyclic:
    def test_widening_forces_convergence(self):
        func = func_of(LOOPY, "f")
        analysis = PathLength(func).solve()
        assert analysis.widened_at, "loop header was never widened"
        headers = {loop.header for loop in analysis.loop_info.loops}
        assert set(analysis.widened_at) <= headers

    def test_widen_applied_after_threshold_visits(self):
        func = func_of(LOOPY, "f")
        analysis = PathLength(func)
        analysis.widen_after = 1
        analysis.widened_at = []
        analysis.solve()
        assert analysis.widened_at


class TestDeterminism:
    def test_rpo_matches_cfg_helper(self):
        func = func_of(LOOPY, "f")
        analysis = PathLength(func).solve()
        assert analysis.rpo == reverse_postorder(func)

    def test_repeated_solves_identical(self):
        func = func_of(LOOPY, "f")
        first = PathLength(func).solve()
        second = PathLength(func).solve()
        assert first.in_states == second.in_states
        assert first.out_states == second.out_states
