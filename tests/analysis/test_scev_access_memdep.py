"""Tests for scalar evolution, access-pattern analysis, and memory
dependences — the analyses behind Fig. 2d of the paper."""

import pytest

from repro.frontend import compile_source
from repro.analysis import (
    AccessPatternAnalysis,
    LoopInfo,
    MemoryDependenceAnalysis,
    SCEVAddRec,
    SCEVConstant,
    SCEVUnknown,
    ScalarEvolution,
    scev_add,
    scev_mul_const,
    scev_sub,
)
from repro.ir import Load, Store


def analyze(source, fname="f"):
    module = compile_source(source, optimize=False)
    func = module.get_function(fname)
    apa = AccessPatternAnalysis(func)
    return func, apa


FIG2D = """
float A[50][60]; float B[50][60]; float z[50];
void f(int n, int m) {
  outer: for (int i = 0; i < n; i++) {
    dot_product: for (int j = 0; j < m; j++) {
      z[i] += A[i][j] * B[i][j];
    }
  }
}
"""


def loops_of(apa):
    loops = {l.name: l for l in apa.loop_info.loops}
    return loops["outer"], loops["dot_product"]


def access_by_name(apa, global_name, kind):
    for info in apa.accesses():
        if info.base is not None and info.base.name == global_name:
            if (kind == "load") == info.is_load:
                return info
    raise AssertionError(f"no {kind} of {global_name}")


class TestSCEVAlgebra:
    def test_constant_fold(self):
        assert scev_add(SCEVConstant(2), SCEVConstant(3)) == SCEVConstant(5)
        assert scev_mul_const(SCEVConstant(4), 3) == SCEVConstant(12)
        assert scev_sub(SCEVConstant(4), SCEVConstant(4)) == SCEVConstant(0)

    def test_zero_identities(self):
        c = SCEVConstant(7)
        assert scev_add(c, SCEVConstant(0)) == c
        assert scev_mul_const(c, 1) is c
        assert scev_mul_const(c, 0) == SCEVConstant(0)

    def test_addrec_zero_step_normalizes(self):
        func, apa = analyze(FIG2D)
        outer, inner = loops_of(apa)
        rec = SCEVAddRec(outer, SCEVConstant(3), SCEVConstant(4))
        delta = scev_sub(rec, rec)
        assert delta == SCEVConstant(0)


class TestInductionSCEV:
    def test_simple_induction(self):
        func, apa = analyze(
            "void f(int n) { loop: for (int i = 5; i < n; i += 2) {} }"
        )
        loop = apa.loop_info.loops[0]
        phi = loop.induction_phi()
        scev = apa.scev.scev_of(phi)
        assert isinstance(scev, SCEVAddRec)
        assert scev.base == SCEVConstant(5)
        assert scev.step == SCEVConstant(2)

    def test_nested_addrec(self):
        func, apa = analyze(FIG2D)
        outer, inner = loops_of(apa)
        info = access_by_name(apa, "A", "load")
        levels = info.addrec_levels()
        assert levels is not None
        assert [(l.name, s) for l, s in levels] == [
            ("outer", 240), ("dot_product", 4)
        ]


class TestAccessPatterns:
    def test_stream_classification(self):
        func, apa = analyze(FIG2D)
        for info in apa.accesses():
            assert info.is_stream  # all Fig. 2d accesses are streams

    def test_strides(self):
        func, apa = analyze(FIG2D)
        outer, inner = loops_of(apa)
        a = access_by_name(apa, "A", "load")
        z_ld = access_by_name(apa, "z", "load")
        assert a.stride_in(inner) == 4
        assert a.stride_in(outer) == 240
        assert z_ld.stride_in(inner) == 0
        assert z_ld.stride_in(outer) == 4

    def test_footprints_match_paper(self):
        """Paper Fig. 2d: ld A/ld B footprint M, ld z/st z footprint 1."""
        func, apa = analyze(FIG2D)
        outer, inner = loops_of(apa)
        M = 60
        assert access_by_name(apa, "A", "load").footprint_in(inner, M) == M
        assert access_by_name(apa, "B", "load").footprint_in(inner, M) == M
        assert access_by_name(apa, "z", "load").footprint_in(inner, M) == 1
        assert access_by_name(apa, "z", "store").footprint_in(inner, M) == 1

    def test_irregular_access_not_stream(self):
        func, apa = analyze(
            """
            float v[64]; int idx[64]; float out[64];
            void f(int n) {
              for (int i = 0; i < n; i++) out[i] = v[idx[i]];
            }
            """
        )
        gather = None
        for info in apa.accesses():
            if info.base is not None and info.base.name == "v":
                gather = info
        assert gather is not None
        assert not gather.is_stream

    def test_argument_base(self):
        func, apa = analyze(
            "void f(float p[16], int n) { for (int i = 0; i < n; i++) p[i] = 0.0f; }"
        )
        store = next(a for a in apa.accesses() if a.is_store)
        assert store.base is func.arguments[0]
        assert store.is_stream


class TestMemDep:
    def test_fig2d_loop_carried_dependency(self):
        """Paper: one loop-carried dependency between st z and ld z."""
        func, apa = analyze(FIG2D)
        md = MemoryDependenceAnalysis(apa)
        outer, inner = loops_of(apa)
        flows = md.recurrence_deps(inner)
        assert len(flows) == 1
        dep = flows[0]
        assert dep.source.base.name == "z" and dep.sink.base.name == "z"
        assert dep.distance == 1

    def test_outer_loop_has_no_carried_dep(self):
        func, apa = analyze(FIG2D)
        md = MemoryDependenceAnalysis(apa)
        outer, inner = loops_of(apa)
        assert not md.has_loop_carried_dependence(outer)

    def test_streaming_store_no_dep(self):
        func, apa = analyze(
            "float y[64]; float x[64];"
            "void f(int n) { for (int i = 0; i < n; i++) y[i] = 2.0f * x[i]; }"
        )
        md = MemoryDependenceAnalysis(apa)
        assert not md.has_loop_carried_dependence(apa.loop_info.loops[0])

    def test_shifted_recurrence_distance(self):
        func, apa = analyze(
            "float v[64];"
            "void f(int n) { for (int i = 2; i < n; i++) v[i] = v[i-2] + 1.0f; }"
        )
        md = MemoryDependenceAnalysis(apa)
        flows = md.recurrence_deps(apa.loop_info.loops[0])
        assert len(flows) == 1
        assert flows[0].distance == 2

    def test_disjoint_offsets_no_dep(self):
        func, apa = analyze(
            "float v[64];"
            "void f(int n) { for (int i = 0; i < n; i++) { v[0] = v[1] + 1.0f; } }"
        )
        md = MemoryDependenceAnalysis(apa)
        flows = md.recurrence_deps(apa.loop_info.loops[0])
        assert not flows  # store v[0] never feeds load v[1]

    def test_different_bases_never_conflict(self):
        func, apa = analyze(
            "float a[8]; float b[8];"
            "void f(int n) { for (int i = 0; i < n; i++) a[0] = b[0] + 1.0f; }"
        )
        md = MemoryDependenceAnalysis(apa)
        assert not md.recurrence_deps(apa.loop_info.loops[0])

    def test_unknown_base_is_conservative(self):
        func, apa = analyze(
            """
            float v[64]; int idx[64];
            void f(int n) {
              for (int i = 0; i < n; i++) v[idx[i]] = v[idx[i]] + 1.0f;
            }
            """
        )
        md = MemoryDependenceAnalysis(apa)
        assert md.has_loop_carried_dependence(apa.loop_info.loops[0])


class TestStreamExtractionAgreement:
    """``is_stream`` reuses the shared affine-subscript extraction
    (``affine_addrec_levels``) instead of re-peeling the SCEV itself;
    the two must never diverge: every stream has an extractable nest
    with loop-invariant steps, and anything the extraction rejects is
    never a stream."""

    def _check_agreement(self, apa):
        from repro.analysis.loops import LoopInfo as _LI

        for info in apa.accesses():
            levels = info.affine_addrec_levels()
            if info.is_stream:
                assert info.base is not None
                assert levels is not None, (
                    f"{info!r} is a stream but the shared extraction "
                    "rejects its subscript"
                )
                if info.loop_info is not None and info.inst.parent:
                    loop = info.loop_info.innermost_loop(info.inst.parent)
                    while loop is not None:
                        assert all(
                            step.is_invariant_in(loop)
                            for _, step in levels
                        )
                        loop = loop.parent
            elif info.base is not None and levels is None:
                assert not info.is_stream

    def test_agreement_on_fig2d(self):
        _func, apa = analyze(FIG2D)
        self._check_agreement(apa)

    def test_agreement_across_workload_registry(self):
        from repro.workloads import get_workload, workload_names

        for name in workload_names():
            workload = get_workload(name)
            module = compile_source(workload.source, workload.name)
            for func in module.defined_functions():
                self._check_agreement(AccessPatternAnalysis(func))

    def test_symbolic_stride_linearized_is_stream(self):
        """``A[i*n + j]``: the inner step is the *symbolic* byte pitch
        4n — constant-only peeling misclassified this as irregular; the
        shared extraction accepts loop-invariant symbolic steps."""
        _func, apa = analyze(
            """
            float A[4096]; float s;
            void f(int n) {
              rows: for (int i = 0; i < n; i++) {
                cols: for (int j = 0; j < n; j++) {
                  s += A[i * n + j];
                }
              }
            }
            """
        )
        load = next(
            a for a in apa.accesses()
            if a.base is not None and a.base.name == "A"
        )
        assert load.affine_addrec_levels() is not None
        assert load.is_stream

    def test_indirect_subscript_rejected_by_both(self):
        _func, apa = analyze(
            """
            float v[64]; int idx[64]; float out[64];
            void f(int n) {
              g: for (int i = 0; i < n; i++) out[i] = v[idx[i]];
            }
            """
        )
        gather = next(
            a for a in apa.accesses()
            if a.base is not None and a.base.name == "v"
        )
        # The loaded index contributes no induction level: the extraction
        # yields an empty nest and the loop-variant residual sinks it.
        assert gather.affine_addrec_levels() == []
        assert not gather.is_stream
