"""Core value classes of the repro IR.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, global variables, and the results of other instructions.
Values track their users (def-use chains), which the analyses and the
accelerator model rely on heavily.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, List, Optional

from .types import FloatType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover
    from .instructions import Instruction

_name_counter = itertools.count()


def _fresh_name(prefix: str) -> str:
    return f"{prefix}{next(_name_counter)}"


class Value:
    """Base class for everything that carries an IR type and can be used."""

    def __init__(self, ty: Type, name: str = ""):
        self.type = ty
        self.name = name or _fresh_name("v")
        self.users: List["Instruction"] = []

    def add_user(self, user: "Instruction") -> None:
        self.users.append(user)

    def remove_user(self, user: "Instruction") -> None:
        # A user may reference the same value through several operand slots;
        # remove one tracking entry per removed reference.
        self.users.remove(user)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to use ``new`` instead."""
        if new is self:
            return
        for user in list(self.users):
            user.replace_operand(self, new)

    @property
    def ref(self) -> str:
        """Printable reference, e.g. ``%x`` for locals or a literal for constants."""
        return f"%{self.name}"

    def __str__(self) -> str:
        return self.ref

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.type} {self.ref}>"


class Constant(Value):
    """A compile-time scalar constant (integer, boolean, or float)."""

    def __init__(self, ty: Type, value):
        super().__init__(ty, name=f"const_{value}")
        if isinstance(ty, IntType):
            value = int(value)
        elif isinstance(ty, FloatType):
            value = float(value)
        else:
            raise TypeError(f"constants must be scalar, got {ty}")
        self.value = value

    @property
    def ref(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class UndefValue(Value):
    """Placeholder for an undefined value (e.g. uninitialized phi input)."""

    @property
    def ref(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    def __init__(self, ty: Type, name: str, index: int):
        super().__init__(ty, name)
        self.index = index


class GlobalVariable(Value):
    """Module-level storage.

    The value's type is a pointer to ``allocated_type``; like LLVM globals,
    using the global yields its address.
    """

    def __init__(self, allocated_type: Type, name: str, initializer=None):
        super().__init__(PointerType(allocated_type), name)
        self.allocated_type = allocated_type
        self.initializer = initializer

    @property
    def ref(self) -> str:
        return f"@{self.name}"


def ensure_distinct_names(values: Iterable[Value], prefix: str = "v") -> None:
    """Rename values so all names in ``values`` are unique (printer helper)."""
    seen = set()
    for value in values:
        base = value.name
        name = base
        counter = 0
        while name in seen:
            counter += 1
            name = f"{base}.{counter}"
        value.name = name
        seen.add(name)


def constant_fold_binary(op: str, lhs: Constant, rhs: Constant) -> Optional[Constant]:
    """Fold a binary operation over two constants, or return None.

    Integer division semantics follow C (truncation toward zero) because the
    frontend lowers C sources.
    """
    a, b = lhs.value, rhs.value
    ty = lhs.type
    try:
        if op == "add":
            return Constant(ty, a + b)
        if op == "sub":
            return Constant(ty, a - b)
        if op == "mul":
            return Constant(ty, a * b)
        if op == "div":
            if isinstance(ty, IntType):
                if b == 0:
                    return None
                q = abs(a) // abs(b)
                return Constant(ty, q if (a >= 0) == (b >= 0) else -q)
            return Constant(ty, a / b) if b != 0 else None
        if op == "rem":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            return Constant(ty, a - b * q)
        if op == "and":
            return Constant(ty, a & b)
        if op == "or":
            return Constant(ty, a | b)
        if op == "xor":
            return Constant(ty, a ^ b)
        if op == "shl":
            # Out-of-range amounts trap at runtime (InterpreterError); never
            # fold them away silently.
            if b < 0 or b >= ty.bits:
                return None
            return Constant(ty, a << b)
        if op == "shr":
            if b < 0 or b >= ty.bits:
                return None
            return Constant(ty, a >> b)
    except (TypeError, ValueError, OverflowError):
        return None
    return None
