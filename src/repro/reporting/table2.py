"""Table II regeneration: per-benchmark speedups over NOVIA and QsCores,
selected-kernel configuration counts, interface counts, merging area savings,
and Cayman runtime, under the small (25%) and large (65%) area budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..workloads import all_workloads
from .bench import WorkloadRecord, _budget_key, budget_metrics
from .formats import render_table
from .runner import BenchmarkComparison, ComparisonRunner

SMALL_BUDGET = 0.25
LARGE_BUDGET = 0.65


@dataclass
class BudgetRow:
    """One benchmark's numbers under one area budget."""

    speedup_over_novia: float
    speedup_over_qscores: float
    seq_blocks: int
    pipelined_regions: int
    coupled: int
    decoupled: int
    scratchpad: int
    area_saving_pct: float
    cayman_speedup: float


@dataclass
class Table2Row:
    suite: str
    benchmark: str
    small: BudgetRow
    large: BudgetRow
    runtime_seconds: float


def _metrics_to_budget_row(metrics: dict) -> BudgetRow:
    return BudgetRow(
        speedup_over_novia=metrics["over_novia"],
        speedup_over_qscores=metrics["over_qscores"],
        seq_blocks=metrics["seq_blocks"],
        pipelined_regions=metrics["pipelined_regions"],
        coupled=metrics["coupled"],
        decoupled=metrics["decoupled"],
        scratchpad=metrics["scratchpad"],
        area_saving_pct=metrics["saving_pct"],
        cayman_speedup=metrics["cayman_speedup"],
    )


def _budget_row(comparison: BenchmarkComparison, budget: float) -> BudgetRow:
    return _metrics_to_budget_row(budget_metrics(comparison, budget))


def build_row(comparison: BenchmarkComparison) -> Table2Row:
    return Table2Row(
        suite=comparison.suite,
        benchmark=comparison.name,
        small=_budget_row(comparison, SMALL_BUDGET),
        large=_budget_row(comparison, LARGE_BUDGET),
        runtime_seconds=comparison.cayman.runtime_seconds,
    )


def row_from_record(record: WorkloadRecord) -> Table2Row:
    """Table II row from a (possibly cache-loaded) bench record.

    The record must have been evaluated with the paper's budgets among its
    ``FlowParams.budgets``; ``runtime_seconds`` then reflects the original
    (cached) run, not the current process.
    """
    return Table2Row(
        suite=record.suite,
        benchmark=record.name,
        small=_metrics_to_budget_row(record.table2[_budget_key(SMALL_BUDGET)]),
        large=_metrics_to_budget_row(record.table2[_budget_key(LARGE_BUDGET)]),
        runtime_seconds=record.runtime_seconds,
    )


def generate_table2(
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[ComparisonRunner] = None,
    progress=None,
    jobs: int = 1,
) -> List[Table2Row]:
    """Run the full comparison and return all Table II rows.

    With ``jobs > 1`` the rows are built from the engine's (possibly
    cache-resident) records evaluated across a process pool; results are
    identical to the serial full-object path.
    """
    runner = runner or ComparisonRunner()
    names = list(benchmarks) if benchmarks else [w.name for w in all_workloads()]
    if jobs > 1:
        records = runner.engine.evaluate(
            names,
            jobs=jobs,
            progress=(lambda name, status: progress(name)) if progress else None,
        )
        return [row_from_record(record) for record in records]
    rows = []
    for name in names:
        if progress is not None:
            progress(name)
        rows.append(build_row(runner.run(name)))
    return rows


def averages(rows: Sequence[Table2Row]) -> Table2Row:
    """The paper's "average" row (arithmetic means, as in Table II)."""

    def mean(values):
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    def avg_budget(select) -> BudgetRow:
        return BudgetRow(
            speedup_over_novia=mean(select(r).speedup_over_novia for r in rows),
            speedup_over_qscores=mean(select(r).speedup_over_qscores for r in rows),
            seq_blocks=round(mean(select(r).seq_blocks for r in rows)),
            pipelined_regions=round(mean(select(r).pipelined_regions for r in rows)),
            coupled=round(mean(select(r).coupled for r in rows)),
            decoupled=round(mean(select(r).decoupled for r in rows)),
            scratchpad=round(mean(select(r).scratchpad for r in rows)),
            area_saving_pct=mean(select(r).area_saving_pct for r in rows),
            cayman_speedup=mean(select(r).cayman_speedup for r in rows),
        )

    return Table2Row(
        suite="",
        benchmark="average",
        small=avg_budget(lambda r: r.small),
        large=avg_budget(lambda r: r.large),
        runtime_seconds=mean(r.runtime_seconds for r in rows),
    )


def render_table2(rows: Sequence[Table2Row], include_average: bool = True) -> str:
    """Text rendering matching the paper's Table II columns."""
    headers = [
        "suite", "benchmark",
        "S:over-NOVIA", "S:over-QsCores", "S:#SB", "S:#PR",
        "S:#C", "S:#D", "S:#S", "S:save%",
        "L:over-NOVIA", "L:over-QsCores", "L:#SB", "L:#PR",
        "L:#C", "L:#D", "L:#S", "L:save%",
        "runtime(s)",
    ]
    all_rows = list(rows)
    if include_average and all_rows:
        all_rows.append(averages(rows))
    body = []
    for row in all_rows:
        body.append([
            row.suite, row.benchmark,
            row.small.speedup_over_novia, row.small.speedup_over_qscores,
            row.small.seq_blocks, row.small.pipelined_regions,
            row.small.coupled, row.small.decoupled, row.small.scratchpad,
            row.small.area_saving_pct,
            row.large.speedup_over_novia, row.large.speedup_over_qscores,
            row.large.seq_blocks, row.large.pipelined_regions,
            row.large.coupled, row.large.decoupled, row.large.scratchpad,
            row.large.area_saving_pct,
            row.runtime_seconds,
        ])
    return render_table(headers, body)
