"""Bounds proofs + interpreter check elision, including the acceptance
gates: >=50% proven accesses on PolyBench kernels and bit-identical
elided execution."""

import pytest

from repro.dataflow import BoundsAnalysis
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.workloads import get_workload

# PolyBench workloads the interval analysis must substantially cover.
POLYBENCH_PROOF_TARGETS = ["trisolv", "bicg", "atax", "mvt", "cholesky"]


def build(name):
    workload = get_workload(name)
    module = compile_source(workload.source, workload.name)
    return workload, module


class TestCoverage:
    @pytest.mark.parametrize("name", POLYBENCH_PROOF_TARGETS)
    def test_at_least_half_of_accesses_proven(self, name):
        _, module = build(name)
        bounds = BoundsAnalysis(module)
        proven, total = bounds.module_coverage()
        assert total > 0
        assert proven / total >= 0.5, (
            f"{name}: only {proven}/{total} accesses proven in-bounds"
        )

    def test_windows_are_superset_of_proofs(self):
        _, module = build("trisolv")
        bounds = BoundsAnalysis(module)
        assert set(bounds.proven) <= set(bounds.windows)
        for inst, window in bounds.proven.items():
            assert window.is_proven
            assert not window.definitely_out_of_bounds


class TestElision:
    @pytest.mark.parametrize("name", ["trisolv", "bicg"])
    def test_elided_run_bit_identical(self, name):
        workload, module = build(name)
        baseline = Interpreter(module)
        base_result = baseline.run(workload.entry)
        elided = Interpreter(module, bounds=BoundsAnalysis(module))
        elided_result = elided.run(workload.entry)
        assert elided.elided_accesses > 0
        assert elided_result == base_result
        assert elided.instructions == baseline.instructions
        # Full memory image must match byte for byte: the elided fast path
        # may not change a single observable effect.
        assert elided.memory.data == baseline.memory.data

    def test_elision_accounting_consistent(self):
        workload, module = build("trisolv")
        bounds = BoundsAnalysis(module)
        interp = Interpreter(module, bounds=bounds)
        interp.run(workload.entry)
        assert interp.elided_accesses + interp.checked_accesses > 0
        proven, total = bounds.module_coverage()
        if proven == total:
            assert interp.checked_accesses == 0


OOB_SOURCE = """
int A[4];
int kernel(int i) { return A[i + 16]; }
int main() { return kernel(0); }
"""


class TestOutOfBounds:
    def test_definite_oob_window_detected(self):
        module = compile_source(OOB_SOURCE, "t")
        bounds = BoundsAnalysis(module)
        oob = bounds.out_of_bounds()
        assert len(oob) == 1
        window = oob[0]
        assert window.root.name == "A"
        assert not window.is_proven
        assert window.definitely_out_of_bounds

    def test_oob_access_never_proven_nor_elided(self):
        module = compile_source(OOB_SOURCE, "t")
        bounds = BoundsAnalysis(module)
        assert bounds.out_of_bounds()[0].inst not in bounds.proven
