"""Accelerator RTL generation.

Turns an :class:`~repro.model.config.AcceleratorEstimate` into a
self-contained structural Verilog design:

* one **datapath module** per synthesized unit (pipelined loop or
  sequential basic block): one operator instance per DFG node, literal
  constants inlined, external SSA inputs exported as ports, and one memory
  port bundle per load/store;
* one **control FSM** per unit sequencing its schedule;
* a **top module** wiring the units to their interface components —
  a shared load/store unit for *coupled* accesses, an AGU+FIFO
  ``cayman_stream_port`` per *decoupled* access, and banked
  ``cayman_spad_bank`` instances per *scratchpad* group;
* the behavioral primitive library used by the instances.

The output is a synthesizable-shaped netlist skeleton: the datapath and
interface structure is complete and matches the model's area accounting,
while floating-point operator internals are behavioral stubs standing in
for the characterized Nangate45 implementations.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..hls.dfg import DFG, DFGNode
from ..hls.scheduling import schedule_dfg
from ..hls.techlib import DEFAULT_TECHLIB, TechLibrary
from ..ir import Constant, Load, Phi, Store
from ..model.config import AcceleratorEstimate
from ..model.interfaces import InterfaceKind
from .primitives import primitives_for
from .verilog import VerilogDesign, VerilogModule, sanitize

_ICMP_CODES = {"eq": 0, "ne": 1, "slt": 2, "sle": 3, "sgt": 4, "sge": 5}
_FCMP_CODES = {"oeq": 0, "one": 1, "olt": 2, "ole": 3, "ogt": 4, "oge": 5}


def _literal(constant: Constant, width: int) -> str:
    if constant.type.is_float:
        if width == 64:
            bits = struct.unpack("<Q", struct.pack("<d", constant.value))[0]
        else:
            bits = struct.unpack("<I", struct.pack("<f", constant.value))[0]
        return f"{width}'h{bits:0{width // 4}x}"
    value = int(constant.value) & ((1 << width) - 1)
    return f"{width}'d{value}"


class DatapathEmitter:
    """Emits one datapath module for a unit DFG."""

    def __init__(self, module: VerilogModule, dfg: DFG):
        self.module = module
        self.dfg = dfg
        self.wire_of: Dict[DFGNode, str] = {}
        self.external_ports: Dict[object, str] = {}
        self.memory_bundles: List[Tuple[DFGNode, str]] = []

    def emit(self) -> None:
        self.module.add_port("clk", "input")
        self.module.add_port("ce", "input")
        for index, node in enumerate(self.dfg.topological_order()):
            self._emit_node(index, node)

    # ------------------------------------------------------------------ nodes

    def _result_wire(self, index: int, node: DFGNode) -> str:
        # Positional naming keeps the netlist deterministic across runs
        # (auto-generated IR value names carry a process-global counter).
        net = self.module.add_net(f"w{index}_{node.resource}",
                                  width=max(1, node.bits))
        self.wire_of[node] = net.name
        return net.name

    def _operand(self, node: DFGNode, position: int, width: int) -> str:
        operand = node.inst.operands[position]
        producer = None
        for pred in node.preds:
            if pred.inst is operand and pred.copy == node.copy:
                producer = pred
                break
        if producer is not None and producer in self.wire_of:
            return self.wire_of[producer]
        if isinstance(operand, Constant):
            return _literal(operand, max(1, width))
        return self._external(operand, width)

    def _external(self, value, width: int) -> str:
        key = id(value)
        if key not in self.external_ports:
            import re

            label = getattr(value, "name", "v")
            if re.fullmatch(r"v\d+(\.\d+)?", label):
                # Auto-generated name: use a stable positional label instead.
                label = f"ext{len(self.external_ports)}"
            port = self.module.add_port(
                f"in_{sanitize(label)}", "input", max(1, width)
            )
            self.external_ports[key] = port.name
        return self.external_ports[key]

    def _emit_node(self, index: int, node: DFGNode) -> None:
        inst = node.inst
        resource = node.resource
        width = max(1, node.bits)

        if isinstance(inst, Phi):
            return  # pipeline registers, handled by the FSM timing
        if resource in ("control", "alloca", "call"):
            return

        if isinstance(inst, Load):
            wire = self._result_wire(index, node)
            bundle = f"m{index}"
            self.module.add_port(f"{bundle}_addr", "output", 32)
            self.module.add_port(f"{bundle}_req", "output")
            rdata = self.module.add_port(f"{bundle}_rdata", "input", width)
            self.module.add_assign(wire, rdata.name)
            address = self._operand(node, 0, 32)
            self.module.add_assign(f"{bundle}_addr", address)
            self.module.add_assign(f"{bundle}_req", "ce")
            self.memory_bundles.append((node, bundle))
            return
        if isinstance(inst, Store):
            bundle = f"m{index}"
            self.module.add_port(f"{bundle}_addr", "output", 32)
            self.module.add_port(f"{bundle}_wdata", "output", width)
            self.module.add_port(f"{bundle}_req", "output")
            self.module.add_assign(f"{bundle}_wdata", self._operand(node, 0, width))
            self.module.add_assign(f"{bundle}_addr", self._operand(node, 1, 32))
            self.module.add_assign(f"{bundle}_req", "ce")
            self.memory_bundles.append((node, bundle))
            return

        wire = self._result_wire(index, node)
        name = f"u{index}_{resource}"
        params = [("WIDTH", str(width))]
        if resource in ("icmp", "fcmp"):
            table = _ICMP_CODES if resource == "icmp" else _FCMP_CODES
            code = table[inst.predicate]
            operand_width = max(1, getattr(inst.operands[0].type, "bits", 32))
            self.module.add_instance(
                f"cayman_{resource}", name,
                [("a", self._operand(node, 0, operand_width)),
                 ("b", self._operand(node, 1, operand_width)),
                 ("pred", f"3'd{code}"), ("y", wire)],
                [("WIDTH", str(operand_width))],
            )
            return
        if resource == "select":
            self.module.add_instance(
                "cayman_select", name,
                [("sel", self._operand(node, 0, 1)),
                 ("a", self._operand(node, 1, width)),
                 ("b", self._operand(node, 2, width)),
                 ("y", wire)],
                params,
            )
            return
        if resource in ("sext", "zext", "trunc", "fpext", "fptrunc"):
            in_width = max(1, getattr(inst.operands[0].type, "bits", 32))
            self.module.add_instance(
                f"cayman_{resource}", name,
                [("a", self._operand(node, 0, in_width)), ("y", wire)],
                [("IN_WIDTH", str(in_width)), ("OUT_WIDTH", str(width))],
            )
            return
        if resource in ("neg", "not", "fneg", "fabs"):
            self.module.add_instance(
                f"cayman_{resource}", name,
                [("a", self._operand(node, 0, width)), ("y", wire)],
                params,
            )
            return
        if resource in ("fadd", "fsub", "fmul", "fdiv", "fsqrt",
                        "mul", "div", "rem", "sitofp", "fptosi"):
            in_width = max(1, getattr(inst.operands[0].type, "bits", width))
            b_conn = (
                self._operand(node, 1, in_width)
                if len(inst.operands) > 1 else f"{in_width}'d0"
            )
            self.module.add_instance(
                f"cayman_{resource}", name,
                [("clk", "clk"),
                 ("a", self._operand(node, 0, in_width)),
                 ("b", b_conn),
                 ("y", wire)],
                [("WIDTH", str(width))],
            )
            return
        # Remaining two-input combinational ops (add/sub/logic/shift/gep).
        self.module.add_instance(
            f"cayman_{resource}", name,
            [("a", self._operand(node, 0, width)),
             ("b", self._operand(node, 1, width)),
             ("y", wire)],
            params,
        )


def _emit_fsm(design: VerilogDesign, name: str, states: int) -> VerilogModule:
    fsm = VerilogModule(name)
    fsm.add_port("clk", "input")
    fsm.add_port("rst", "input")
    fsm.add_port("start", "input")
    fsm.add_port("busy", "output")
    fsm.add_port("done", "output")
    width = max(1, (max(2, states) - 1).bit_length())
    fsm.add_net("state", width, kind="reg")
    last = states - 1
    fsm.add_block(f"""always @(posedge clk) begin
  if (rst)
    state <= {width}'d0;
  else if (start && state == {width}'d0)
    state <= {width}'d1;
  else if (state != {width}'d0)
    state <= (state == {width}'d{last}) ? {width}'d0 : state + {width}'d1;
end""")
    fsm.add_assign("busy", f"state != {width}'d0")
    fsm.add_assign("done", f"state == {width}'d{last}")
    design.add_module(fsm)
    return fsm


def generate_accelerator(
    estimate: AcceleratorEstimate,
    name: Optional[str] = None,
    techlib: TechLibrary = DEFAULT_TECHLIB,
) -> str:
    """Full Verilog text for one accelerator estimate."""
    top_name = sanitize(name or f"accel_{estimate.config.region.name}")
    design = VerilogDesign(top_name)

    plan = estimate.config.plan
    used_resources: List[str] = []
    unit_infos = []

    for unit_index, (unit_name, dfg) in enumerate(estimate.units):
        module = VerilogModule(sanitize(f"dp{unit_index}_{unit_name}"))
        emitter = DatapathEmitter(module, dfg)
        emitter.emit()
        design.add_module(module)
        used_resources.extend(n.resource for n in dfg.nodes)
        schedule = schedule_dfg(
            dfg, techlib, plan.access_timing, plan.port_counts()
        )
        fsm = _emit_fsm(
            design, sanitize(f"fsm{unit_index}_{unit_name}"),
            max(2, schedule.length),
        )
        unit_infos.append((module, fsm, emitter))

    top = VerilogModule(top_name)
    top.add_port("clk", "input")
    top.add_port("rst", "input")
    top.add_port("start", "input")
    top.add_port("done", "output")
    top.add_port("mem_req", "output")
    top.add_port("mem_wen", "output")
    top.add_port("mem_addr", "output", 32)
    top.add_port("mem_wdata", "output", 32)
    top.add_port("mem_rdata", "input", 32)
    top.add_port("mem_ack", "input")

    done_wires = []
    for index, (module, fsm, emitter) in enumerate(unit_infos):
        busy = top.add_net(f"busy_{index}")
        done = top.add_net(f"done_{index}")
        done_wires.append(done.name)
        top.add_instance(
            fsm.name, f"i_{fsm.name}",
            [("clk", "clk"), ("rst", "rst"), ("start", "start"),
             ("busy", busy.name), ("done", done.name)],
        )
        connections = [("clk", "clk"), ("ce", busy.name)]
        for port in module.ports:
            if port.name in ("clk", "ce"):
                continue
            net = top.add_net(f"u{index}_{port.name}", port.width)
            connections.append((port.name, net.name))
        top.add_instance(module.name, f"i_{module.name}", connections)

        # Interface components for this unit's memory bundles.  Replicated
        # copies of one access (loop unrolling) share the same interface
        # component, mirroring the model's per-access area accounting.
        seen_insts = set()
        for node, bundle in emitter.memory_bundles:
            if node.inst in seen_insts:
                continue
            seen_insts.add(node.inst)
            assignment = plan.assignments.get(node.inst)
            kind = assignment.kind if assignment else InterfaceKind.COUPLED
            prefix = f"u{index}_{bundle}"
            if kind is InterfaceKind.DECOUPLED:
                used_resources.append("stream_port")
                top.add_instance(
                    "cayman_stream_port", f"i_{prefix}_stream",
                    [("clk", "clk"), ("rst", "rst"), ("start", "start"),
                     ("base", f"{prefix}_addr"), ("stride", "32'd4"),
                     ("count", "32'd0"), ("pop", f"{prefix}_req"),
                     ("data", f"{prefix}_rdata" if isinstance(node.inst, Load)
                      else ""),
                     ("valid", ""), ("mem_req", ""), ("mem_addr", ""),
                     ("mem_rdata", "mem_rdata"), ("mem_ack", "mem_ack")],
                )
            elif kind is InterfaceKind.SCRATCHPAD:
                used_resources.append("spad_bank")
                depth = max(2, assignment.spad_bytes // 4 if assignment else 64)
                top.add_instance(
                    "cayman_spad_bank", f"i_{prefix}_spad",
                    [("clk", "clk"), ("en", f"{prefix}_req"),
                     ("wen", "1'b0" if isinstance(node.inst, Load) else "1'b1"),
                     ("addr", f"{prefix}_addr"),
                     ("wdata", f"{prefix}_wdata"
                      if isinstance(node.inst, Store) else "32'd0"),
                     ("rdata", f"{prefix}_rdata"
                      if isinstance(node.inst, Load) else ""),
                     ("dma_en", "1'b0"), ("dma_wen", "1'b0"),
                     ("dma_addr", "32'd0"), ("dma_wdata", "32'd0"),
                     ("dma_rdata", "")],
                    [("DEPTH", str(depth))],
                )
            else:
                used_resources.append("lsu_port")
                top.add_instance(
                    "cayman_lsu_port", f"i_{prefix}_lsu",
                    [("clk", "clk"), ("req", f"{prefix}_req"),
                     ("wen", "1'b0" if isinstance(node.inst, Load) else "1'b1"),
                     ("addr", f"{prefix}_addr"),
                     ("wdata", f"{prefix}_wdata"
                      if isinstance(node.inst, Store) else "32'd0"),
                     ("rdata", f"{prefix}_rdata"
                      if isinstance(node.inst, Load) else ""),
                     ("ready", ""),
                     ("mem_req", ""), ("mem_wen", ""), ("mem_addr", ""),
                     ("mem_wdata", ""), ("mem_rdata", "mem_rdata"),
                     ("mem_ack", "mem_ack")],
                )

    if done_wires:
        top.add_assign("done", " & ".join(done_wires))
    else:
        top.add_assign("done", "start")
    top.add_assign("mem_req", "1'b0  /* arbitated per-port above */")
    top.add_assign("mem_wen", "1'b0")
    top.add_assign("mem_addr", "32'd0")
    top.add_assign("mem_wdata", "32'd0")
    design.add_module(top)

    for text in primitives_for(dict.fromkeys(used_resources)):
        design.add_raw(text)
    return design.emit()


def generate_solution(solution, name: str = "cayman_solution") -> str:
    """Verilog for every accelerator in a selection solution."""
    parts = []
    for index, estimate in enumerate(solution.accelerators):
        parts.append(
            generate_accelerator(estimate, name=f"{sanitize(name)}_acc{index}")
        )
    return "\n\n".join(parts)
