"""Selection solutions and Pareto-front machinery (paper §III-D).

A *solution* accelerates a set of non-overlapping kernels, each with a chosen
accelerator configuration.  Solutions are compared on total accelerator area
(weight) and total saved time (profit); fronts are kept Pareto-optimal and
thinned by the geometric ``filter(α)`` that bounds front length by
``log_α A``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..model.config import AcceleratorEstimate


class Solution:
    """A set of accelerated kernels with configurations (one solution φ)."""

    __slots__ = ("accelerators", "area", "saved_seconds")

    def __init__(self, accelerators: Tuple[AcceleratorEstimate, ...] = ()):
        self.accelerators = tuple(accelerators)
        self.area = sum(a.area for a in self.accelerators)
        self.saved_seconds = sum(a.saved_seconds for a in self.accelerators)

    @property
    def is_empty(self) -> bool:
        return not self.accelerators

    def union(self, other: "Solution") -> "Solution":
        """φ1 ∪ φ2 — combine kernels from disjoint subtrees."""
        return Solution(self.accelerators + other.accelerators)

    def speedup(self, total_seconds: float) -> float:
        """Equation 1 evaluated for this solution."""
        remaining = total_seconds - self.saved_seconds
        if remaining <= 0:
            return float("inf")
        return total_seconds / remaining

    def kernel_names(self) -> List[str]:
        return [a.config.kernel_name for a in self.accelerators]

    def interface_totals(self) -> dict:
        totals = {"coupled": 0, "decoupled": 0, "scratchpad": 0, "scanchain": 0}
        for accel in self.accelerators:
            for key, value in accel.interface_counts.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def seq_block_total(self) -> int:
        return sum(a.seq_blocks for a in self.accelerators)

    def pipelined_region_total(self) -> int:
        return sum(a.pipelined_regions for a in self.accelerators)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Solution {len(self.accelerators)} accels "
            f"area={self.area:.0f} saved={self.saved_seconds * 1e6:.1f}us>"
        )


#: The do-nothing solution (area 0, gain 0), member of every front.
EMPTY_SOLUTION = Solution()


def pareto(solutions: Iterable[Solution]) -> List[Solution]:
    """Pareto-optimal subsequence: increasing area, strictly increasing gain.

    Among equal-area solutions only the best-gain one survives; any solution
    whose gain does not beat a cheaper one is dropped.
    """
    ordered = sorted(solutions, key=lambda s: (s.area, -s.saved_seconds))
    front: List[Solution] = []
    best_saved = float("-inf")
    for solution in ordered:
        if solution.saved_seconds > best_saved:
            front.append(solution)
            best_saved = solution.saved_seconds
    return front


def filter_front(front: Sequence[Solution], alpha: float) -> List[Solution]:
    """The paper's ``filter``: drop solutions too close in area.

    Partitions the front into geometric buckets: each bucket is anchored at
    the first not-yet-covered solution ``s`` and spans areas in
    ``[s.area, α · s.area]``.  From every bucket the *last* (highest-gain,
    since Pareto fronts have strictly increasing gain) solution is kept.
    Zero-area solutions (the empty solution) are always kept.

    Endpoint guarantee: for every solution ``s`` of the input front the
    result contains a solution ``t`` with ``t.saved_seconds ≥
    s.saved_seconds`` and ``t.area ≤ α · s.area``.  In particular the
    maximum-gain endpoint of the front always survives, so
    ``best_under_budget`` after filtering is never worse than the unfiltered
    optimum at a budget relaxed by α.  Bucket anchors grow geometrically, so
    the result still has at most ``log_α(A_max / A_min) + 1`` positive-area
    entries.
    """
    if alpha <= 1.0:
        return list(front)
    result: List[Solution] = []
    positives: List[Solution] = []
    for solution in front:
        if solution.area <= 0:
            result.append(solution)
        else:
            positives.append(solution)
    index = 0
    count = len(positives)
    while index < count:
        anchor = positives[index].area
        last = index
        while last + 1 < count and positives[last + 1].area <= alpha * anchor:
            last += 1
        result.append(positives[last])
        index = last + 1
    return result


def combine(
    left: Sequence[Solution],
    right: Sequence[Solution],
    area_cap: Optional[float] = None,
) -> List[Solution]:
    """The ⊗ operation: Pareto front of all pairwise unions."""
    unions: List[Solution] = []
    for a in left:
        for b in right:
            union = a.union(b)
            if area_cap is not None and union.area > area_cap:
                continue
            unions.append(union)
    return pareto(unions)
