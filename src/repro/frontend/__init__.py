"""Mini-C frontend: lexer, parser, and AST → IR lowering."""

from .errors import FrontendError, LexError, ParseError, SemanticError, SourceLocation
from .lexer import Token, tokenize
from .parser import Parser, parse
from .lowering import compile_source, lower_program, resolve_type

__all__ = [
    "FrontendError", "LexError", "ParseError", "SemanticError", "SourceLocation",
    "Token", "tokenize", "Parser", "parse",
    "compile_source", "lower_program", "resolve_type",
]
