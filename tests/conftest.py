"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, profile_module


FIG2_SOURCE = """
float x[100]; float y[100];
float A[30][30]; float B[30][30]; float z[30];

void initdata(int n, int m) {
  for (int i = 0; i < n; i++) {
    z[i] = 0.0f;
    for (int j = 0; j < n; j++) {
      A[i][j] = (float)(i + j);
      B[i][j] = (float)(i - j);
    }
  }
  for (int i = 0; i < m; i++) { x[i] = (float)i; y[i] = 0.0f; }
}

void func0(int n, float k, float b) {
  linear: for (int i = 0; i < n; i++) { y[i] = k * x[i] + b; }
}

void func1(int n, int m) {
  outer: for (int i = 0; i < n; i++) {
    dot_product: for (int j = 0; j < m; j++) {
      z[i] += A[i][j] * B[i][j];
    }
  }
}

int main() {
  initdata(30, 100);
  for (int r = 0; r < 4; r++) { func0(100, 2.0f, 1.0f); func1(30, 30); }
  return 0;
}
"""


@pytest.fixture(scope="session")
def fig2_module():
    """The paper's Fig. 2 example program, compiled (with -O3 passes)."""
    return compile_source(FIG2_SOURCE, "fig2")


@pytest.fixture(scope="session")
def fig2_module_noopt():
    """Fig. 2 example without the optimization pipeline."""
    return compile_source(FIG2_SOURCE, "fig2_noopt", optimize=False)


@pytest.fixture(scope="session")
def fig2_profile(fig2_module):
    return profile_module(fig2_module)


def run_c(source: str, entry: str = "main", args=None, optimize: bool = True):
    """Compile and execute a mini-C program; return (result, interpreter)."""
    module = compile_source(source, "test", optimize=optimize)
    interp = Interpreter(module)
    result = interp.run(entry, args or [])
    return result, interp
