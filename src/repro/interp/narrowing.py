"""Narrowing interpreter: executes the *narrowed* datapath bit-for-bit.

The bitwidth analysis claims every integer instruction can be implemented
on ``proven_width(inst)`` datapath bits: the full-width value is
reconstructed by zero-extension (when the dropped high bits are known
zero) or sign-extension from the narrow sign bit (the
:func:`~repro.dataflow.bitwidth.demanded_truncate` contract).  This
interpreter simulates exactly that hardware — after every integer
instruction it truncates the result to its proven width and re-extends —
so running a workload under it and comparing outputs against the plain
:class:`~repro.interp.interpreter.Interpreter` validates the end-to-end
claim: *narrowing is observably invisible*.  Any diverging output byte
means an unsound proven width.

Like bounds elision and the sanitizer, the claims are conditional on the
interprocedural argument seeds; a top-level entry driven outside its
seeded ranges disables narrowing for the run (``narrowing_active`` turns
False) instead of faulting on vacuous claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import Function, Instruction, Module
from ..dataflow import ModuleBitwidthAnalysis, ModuleIntervalAnalysis
from .interpreter import Interpreter


def _extend(value: int, width: int, bits: int, zero_extend: bool) -> int:
    """Reconstruct a ``bits``-wide value from its ``width`` datapath bits."""
    low = value & ((1 << width) - 1)
    if zero_extend or not (low >> (width - 1)) & 1:
        return low
    # Negative: replicate the narrow sign bit (two's complement).
    return low - (1 << width)


class NarrowingInterpreter(Interpreter):
    """Interpreter whose integer datapaths are ``proven_width`` bits wide."""

    def __init__(
        self,
        module: Module,
        memory_size: int = 1 << 22,
        max_instructions: int = 200_000_000,
        profile: bool = False,
        engine: str = "compiled",
    ):
        super().__init__(
            module, memory_size, max_instructions, profile, bounds=None,
            engine=engine,
        )
        self.intervals = ModuleIntervalAnalysis(module)
        self.bitwidth = ModuleBitwidthAnalysis(module, self.intervals)
        #: inst → (proven width, zero-extend?) for every narrowable inst
        self._narrow: Dict[Instruction, Tuple[int, bool]] = {}
        #: results actually passed through a narrowing truncate+extend
        self.narrowed_results = 0
        self.narrowing_active = True
        for func in module.defined_functions():
            analysis = self.bitwidth.for_function(func)
            for inst in func.instructions():
                if not inst.type.is_int:
                    continue
                bits = inst.type.bits
                width = analysis.proven_width(inst)
                if width >= bits:
                    continue
                zero_extend = (
                    analysis.known(inst).leading_zeros() >= bits - width
                )
                self._narrow[inst] = (width, zero_extend)

    # Entry gating (mirrors elision / sanitizer semantics) --------------------

    def call_function(self, func: Function, args: List):
        if self._depth == 0 and not self._args_in_seeds(func, args):
            self.narrowing_active = False
        return super().call_function(func, args)

    def _args_in_seeds(self, func: Function, args: List) -> bool:
        analysis = self.intervals.for_function(func)
        for formal, actual in zip(func.arguments, args):
            seeded = analysis.arg_intervals.get(formal)
            if seeded is not None and not seeded.contains(actual):
                return False
        return True

    # Narrowed execution ------------------------------------------------------

    def _apply_narrowing(self, inst: Instruction, result):
        """Truncate+re-extend ``result`` to ``inst``'s proven width; shared
        by the reference ``_execute`` override and the compiled-engine hook."""
        if (
            self.narrowing_active
            and result is not None
            and inst.type.is_int
        ):
            spec = self._narrow.get(inst)
            if spec is not None:
                width, zero_extend = spec
                self.narrowed_results += 1
                bits = inst.type.bits
                narrowed = _extend(result, width, bits, zero_extend)
                if bits <= 1:
                    narrowed &= 1  # i1 stays unsigned 0/1
                result = narrowed
        return result

    def _execute(self, inst: Instruction, env: Dict):
        return self._apply_narrowing(inst, super()._execute(inst, env))

    def _compile_result_hook(self, inst: Instruction):
        if inst not in self._narrow:
            return None

        def hook(result, *values, _inst=inst):
            return self._apply_narrowing(_inst, result)

        return hook
