"""Control-flow-graph utilities over IR functions."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir import BasicBlock, Function


def reachable_blocks(func: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    seen: Set[BasicBlock] = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors)
    return seen


def predecessor_map(func: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Predecessor lists for every block, computed in one pass."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors:
            preds[succ].append(block)
    return preds


def edges(func: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """All CFG edges as (source, target) pairs."""
    result = []
    for block in func.blocks:
        for succ in block.successors:
            result.append((block, succ))
    return result


def reverse_postorder(func: Function) -> List[BasicBlock]:
    """Blocks in reverse post-order from the entry (a topological-ish order)."""
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack: List[Tuple[BasicBlock, int]] = [(block, 0)]
        visited.add(block)
        while stack:
            current, index = stack.pop()
            succs = current.successors
            if index < len(succs):
                stack.append((current, index + 1))
                succ = succs[index]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                postorder.append(current)

    visit(func.entry)
    return list(reversed(postorder))


def exit_blocks(func: Function) -> List[BasicBlock]:
    """Blocks that leave the function (end in a return)."""
    return [block for block in func.blocks if not block.successors]


def is_single_exit(func: Function) -> bool:
    return len(exit_blocks(func)) == 1
