"""Banking rule tests (BK001/BK002): the optimistic model's claims are
flagged, the proving model's configs are clean, and both rules carry
catalog entries for ``--explain``."""

import pytest

from repro.analysis import WPST
from repro.diagnostics import Severity, run_lint
from repro.diagnostics.registry import get_rule
from repro.frontend import compile_source
from repro.interp import profile_module
from repro.model import AcceleratorModel
from repro.workloads import get_workload


def lint(name, **model_kwargs):
    workload = get_workload(name)
    module = compile_source(workload.source, workload.name)
    profile = profile_module(module, entry=workload.entry)
    wpst = WPST(module, entry_function=workload.entry)
    model = AcceleratorModel(module, profile, **model_kwargs)
    return run_lint(module, profile=profile, wpst=wpst, model=model)


def codes(result):
    return {d.code for d in result.diagnostics}


class TestBK001ConflictClaim:
    def test_fires_on_optimistic_model(self):
        """prove_banking=False reproduces the historical claims: cyclic-U
        banking of A[2*i] — a provable conflict the lint must reject."""
        result = lint("stride2-collider", prove_banking=False)
        found = [d for d in result.diagnostics if d.code == "BK001"]
        assert found, f"BK001 missing; got {codes(result)}"
        assert all(d.severity is Severity.ERROR for d in found)
        assert any("provable bank conflict" in d.message for d in found)
        assert any("A" in d.message for d in found)

    def test_clean_on_proving_model(self):
        """The sound model serializes what it cannot prove, so its own
        configurations never claim a conflicted scheme."""
        result = lint("stride2-collider")
        assert "BK001" in result.checked_rules
        assert not [d for d in result.diagnostics if d.code == "BK001"]

    def test_clean_on_conflict_free_workload(self):
        result = lint("bank-transpose", prove_banking=False)
        bk1 = [d for d in result.diagnostics if d.code == "BK001"]
        # bank-transpose's claimed cyclic schemes on T *are* conflicted:
        # the optimistic model is flagged here too.
        assert bk1
        result = lint("trisolv", prove_banking=False)
        assert not [d for d in result.diagnostics if d.code == "BK001"]


class TestBK002Overprovision:
    def test_fires_on_optimistic_model(self):
        """Claimed banks the proof cannot back are surplus area: INFO."""
        result = lint("stride2-collider", prove_banking=False)
        found = [d for d in result.diagnostics if d.code == "BK002"]
        assert found
        assert all(d.severity is Severity.INFO for d in found)
        assert any("no provable scheme" in d.message or
                   "proven scheme" in d.message for d in found)

    def test_clean_on_proving_model(self):
        """_apply_banking already shrinks proven groups and the serialized
        ones keep their claim deliberately (area parity) — but the rule
        only reports what the scheduler cannot use."""
        result = lint("bank-transpose")
        assert "BK002" in result.checked_rules
        assert not [d for d in result.diagnostics if d.code == "BK001"]


class TestCatalog:
    @pytest.mark.parametrize("code", ["BK001", "BK002"])
    def test_explainable(self, code):
        entry = get_rule(code)
        assert entry is not None
        assert entry.layer == "config"
        assert "bank" in entry.description.lower()
        assert entry.paper_ref

    def test_severities(self):
        assert get_rule("BK001").severity is Severity.ERROR
        assert get_rule("BK002").severity is Severity.INFO
