"""Heuristic accelerator merging over selection solutions (paper §III-E).

For every Pareto-optimal selection solution Cayman repeatedly

1. estimates the area saving of merging every pair of datapath units
   contained in the solution,
2. merges the pair with the maximum positive saving into a reconfigurable
   datapath unit, combining their owning accelerators into one reusable
   accelerator (each member kernel keeps its own FSM; a global *Ctrl* unit
   dispatches configurations), and
3. treats the merged unit/accelerator as a normal one for further rounds,

until no positive saving remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hls.fsm import GlobalControlUnit
from ..hls.techlib import ACCELERATOR_BASE_AREA_UM2, DEFAULT_TECHLIB, TechLibrary
from ..selection.solution import Solution
from ..telemetry import current as current_telemetry
from .dfg_merge import MergedUnit, estimate_pair_saving, merge_pair


@dataclass
class ReusableAccelerator:
    """One accelerator of the merged solution and the kernels it serves."""

    kernel_names: List[str]
    unit_names: List[str]

    @property
    def region_count(self) -> int:
        return len(self.kernel_names)

    @property
    def is_reusable(self) -> bool:
        return self.region_count > 1


@dataclass
class MergedSolution:
    """Result of merging one selection solution."""

    solution: Solution
    area_before: float
    area_after: float
    merge_steps: int
    accelerators: List[ReusableAccelerator] = field(default_factory=list)
    #: Final datapath-unit pool after merging (reconfigurable units included).
    units: List["MergedUnit"] = field(default_factory=list)
    #: Union-find root (accelerator group id) per unit, aligned with `units`.
    unit_groups: List[int] = field(default_factory=list)
    #: Group root per entry of `accelerators` (same id space as unit_groups).
    group_roots: List[int] = field(default_factory=list)
    #: FU area recovered specifically by width-aware matching: saving the
    #: legacy binary 32/64 bucketing could not have realized.
    width_recovered_area: float = 0.0

    @property
    def saving(self) -> float:
        return self.area_before - self.area_after

    @property
    def saving_pct(self) -> float:
        if self.area_before <= 0:
            return 0.0
        return 100.0 * self.saving / self.area_before

    @property
    def saved_seconds(self) -> float:
        return self.solution.saved_seconds

    def speedup(self, total_seconds: float) -> float:
        return self.solution.speedup(total_seconds)

    @property
    def mean_regions_per_reusable(self) -> float:
        reusable = [a for a in self.accelerators if a.is_reusable]
        if not reusable:
            return 0.0
        return sum(a.region_count for a in reusable) / len(reusable)


class _UnionFind:
    def __init__(self, count: int):
        self.parent = list(range(count))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


class AcceleratorMerger:
    """Greedy pairwise merging engine."""

    def __init__(
        self,
        techlib: TechLibrary = DEFAULT_TECHLIB,
        max_steps: Optional[int] = None,
        max_units: int = 400,
        min_match_fraction: float = 0.0,
    ):
        self.techlib = techlib
        self.max_steps = max_steps
        self.max_units = max_units
        #: Restricted hardware sharing (baselines): a pair may merge only if
        #: the match covers at least this fraction of the smaller unit.
        self.min_match_fraction = min_match_fraction

    def merge(self, solution: Solution) -> MergedSolution:
        tele = current_telemetry()
        with tele.span(
            "merging.solution", accelerators=len(solution.accelerators)
        ) as span:
            merged = self._merge_impl(solution)
            if tele.enabled:
                span.set("steps", merged.merge_steps)
                span.set("saving_um2", merged.saving)
                tele.count("merging.solutions")
                tele.count("merging.steps", merged.merge_steps)
                tele.count("merging.recovered_area_um2", merged.saving)
                tele.count(
                    "merging.width_recovered_area_um2",
                    merged.width_recovered_area,
                )
        return merged

    def _merge_impl(self, solution: Solution) -> MergedSolution:
        units: List[MergedUnit] = []
        kernel_of_owner: Dict[int, str] = {}
        for owner, accel in enumerate(solution.accelerators):
            kernel_of_owner[owner] = accel.config.kernel_name
            for name, dfg in accel.units:
                units.append(
                    MergedUnit(
                        name=f"{accel.config.kernel_name}/{name}",
                        dfg=dfg,
                        owner=owner,
                        member_names=[f"{accel.config.kernel_name}/{name}"],
                    )
                )

        area_before = solution.area
        if len(units) > self.max_units or len(units) < 2:
            return self._finalize(solution, area_before, 0.0, units,
                                  kernel_of_owner, _UnionFind(len(solution.accelerators)), 0)

        uf = _UnionFind(len(solution.accelerators))
        total_step_saving = 0.0
        width_recovered = 0.0
        steps = 0
        # Lazily maintained pair-saving cache.  Keyed by per-run serials,
        # not bare id(): a unit replaced during merging could be
        # garbage-collected and its id() reused by the next merged unit,
        # which made a stale cached saving apply to the wrong pair
        # (heap-layout dependent, so results varied with process history).
        # ``ever_created`` keeps every unit alive for the run so the
        # id-indexed serial map stays collision-free.
        ever_created: List[MergedUnit] = list(units)
        serials: Dict[int, int] = {
            id(unit): serial for serial, unit in enumerate(ever_created)
        }
        savings: Dict[Tuple[int, int], Tuple[float, object]] = {}

        def register(unit: MergedUnit) -> MergedUnit:
            serials[id(unit)] = len(ever_created)
            ever_created.append(unit)
            return unit

        def pair_saving(i: int, j: int):
            key = (serials[id(units[i])], serials[id(units[j])])
            if key not in savings:
                current_telemetry().count("merging.pairs_evaluated")
                saving, match = estimate_pair_saving(
                    units[i], units[j], self.techlib
                )
                if self.min_match_fraction > 0.0:
                    smaller = min(len(units[i].dfg.nodes), len(units[j].dfg.nodes))
                    fraction = len(match.pairs) / max(1, smaller)
                    if fraction < self.min_match_fraction:
                        saving = 0.0
                savings[key] = (saving, match)
            return savings[key]

        while True:
            if self.max_steps is not None and steps >= self.max_steps:
                break
            best = None
            best_saving = 0.0
            best_match = None
            for i in range(len(units)):
                for j in range(i + 1, len(units)):
                    saving, match = pair_saving(i, j)
                    if saving > best_saving:
                        best, best_saving, best_match = (i, j), saving, match
            if best is None:
                break
            i, j = best
            merged = register(
                merge_pair(units[i], units[j], self.techlib, best_match)
            )
            owner_a, owner_b = units[i].owner, units[j].owner
            uf.union(uf.find(owner_a), uf.find(owner_b))
            merged.owner = uf.find(owner_a)
            # Replace the pair with the merged unit.
            units = [u for k, u in enumerate(units) if k not in (i, j)]
            units.append(merged)
            total_step_saving += best_saving
            width_recovered += best_match.width_recovered_area
            steps += 1

        return self._finalize(
            solution, area_before, total_step_saving, units, kernel_of_owner,
            uf, steps, width_recovered
        )

    #: Fraction of redundant interface hardware a reusable accelerator can
    #: actually share between its mutually exclusive member kernels (the
    #: remainder pays for the muxing/glue in front of the shared ports).
    INTERFACE_SHARE_FACTOR = 0.8

    def _finalize(
        self,
        solution: Solution,
        area_before: float,
        step_saving: float,
        units: List[MergedUnit],
        kernel_of_owner: Dict[int, str],
        uf: _UnionFind,
        steps: int,
        width_recovered: float = 0.0,
    ) -> MergedSolution:
        # Group accelerators by union-find root.
        groups: Dict[int, List[int]] = {}
        for owner in range(len(solution.accelerators)):
            groups.setdefault(uf.find(owner), []).append(owner)

        ctrl_overhead = 0.0
        base_saving = 0.0
        accelerators: List[ReusableAccelerator] = []
        group_roots: List[int] = []
        for root, owners in groups.items():
            group_roots.append(root)
            kernels = [kernel_of_owner[o] for o in owners]
            unit_names = [
                u.name for u in units if uf.find(u.owner) == root
            ]
            accelerators.append(ReusableAccelerator(kernels, unit_names))
            if len(owners) > 1:
                config_bits = sum(
                    u.config_bits for u in units if uf.find(u.owner) == root
                )
                ctrl_overhead += GlobalControlUnit(
                    config_bits=0, members=len(owners)
                ).area(self.techlib)
                # Combined accelerators share one bus/trigger wrapper.
                base_saving += (len(owners) - 1) * ACCELERATOR_BASE_AREA_UM2
                # Only one member kernel runs at a time, so LSUs, AGUs,
                # FIFOs, and DMA engines can be multiplexed between them:
                # the group keeps the largest member's interface set and
                # shares it (with mux overhead) with the others.
                iface_areas = [
                    solution.accelerators[o].breakdown.interfaces
                    for o in owners
                ]
                redundant = sum(iface_areas) - max(iface_areas)
                base_saving += self.INTERFACE_SHARE_FACTOR * redundant

        area_after = max(
            0.0, area_before - step_saving - base_saving + ctrl_overhead
        )
        return MergedSolution(
            solution=solution,
            area_before=area_before,
            area_after=area_after,
            merge_steps=steps,
            accelerators=accelerators,
            units=list(units),
            unit_groups=[uf.find(u.owner) for u in units],
            group_roots=group_roots,
            width_recovered_area=width_recovered,
        )


def merge_solution(
    solution: Solution, techlib: TechLibrary = DEFAULT_TECHLIB
) -> MergedSolution:
    """Merge one solution with the default engine."""
    return AcceleratorMerger(techlib).merge(solution)
