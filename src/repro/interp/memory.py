"""Flat byte-addressable memory for the IR interpreter."""

from __future__ import annotations

import struct

from ..ir import FloatType, IntType, PointerType, Type, sizeof


class MemoryError_(Exception):
    """Out-of-bounds or misaligned access in interpreter memory."""


class FlatMemory:
    """A single linear address space with bump allocation.

    Address 0 is kept unmapped so that null-pointer dereferences trap.
    """

    def __init__(self, size: int = 1 << 22):
        self.size = size
        self.data = bytearray(size)
        self.brk = 64  # small unmapped guard region at the bottom

    def allocate(self, ty: Type, align: int = 8) -> int:
        """Reserve storage for a value of type ``ty``; returns the address."""
        nbytes = sizeof(ty)
        self.brk = (self.brk + align - 1) // align * align
        address = self.brk
        self.brk += nbytes
        if self.brk > self.size:
            raise MemoryError_(
                f"out of interpreter memory ({self.brk} > {self.size})"
            )
        return address

    def _check(self, address: int, nbytes: int) -> None:
        if address < 64 or address + nbytes > self.size:
            raise MemoryError_(f"access at {address} ({nbytes} bytes) out of range")

    # Typed accessors --------------------------------------------------------
    #
    # ``load``/``store`` range-check every access.  The ``*_unchecked``
    # variants skip the check; the interpreter routes an access here only
    # when the dataflow layer proved it in-bounds relative to a root object
    # whose allocation was itself range-checked (see repro.dataflow.bounds).

    def load_unchecked(self, address: int, ty: Type):
        if isinstance(ty, IntType):
            nbytes = max(1, (ty.bits + 7) // 8)
            raw = int.from_bytes(self.data[address:address + nbytes], "little")
            sign_bit = 1 << (ty.bits - 1)
            return (raw & (sign_bit - 1)) - (raw & sign_bit) if ty.bits > 1 else raw & 1
        if isinstance(ty, FloatType):
            fmt = "<f" if ty.bits == 32 else "<d"
            return struct.unpack_from(fmt, self.data, address)[0]
        if isinstance(ty, PointerType):
            return int.from_bytes(self.data[address:address + 8], "little")
        raise MemoryError_(f"cannot load type {ty}")

    def store_unchecked(self, address: int, ty: Type, value) -> None:
        if isinstance(ty, IntType):
            nbytes = max(1, (ty.bits + 7) // 8)
            mask = (1 << (8 * nbytes)) - 1
            self.data[address:address + nbytes] = (int(value) & mask).to_bytes(
                nbytes, "little"
            )
            return
        if isinstance(ty, FloatType):
            fmt = "<f" if ty.bits == 32 else "<d"
            struct.pack_into(fmt, self.data, address, float(value))
            return
        if isinstance(ty, PointerType):
            self.data[address:address + 8] = (int(value) & ((1 << 64) - 1)).to_bytes(
                8, "little"
            )
            return
        raise MemoryError_(f"cannot store type {ty}")

    def load(self, address: int, ty: Type):
        if isinstance(ty, IntType):
            nbytes = max(1, (ty.bits + 7) // 8)
            self._check(address, nbytes)
            raw = int.from_bytes(self.data[address:address + nbytes], "little")
            # Sign-extend.
            sign_bit = 1 << (ty.bits - 1)
            return (raw & (sign_bit - 1)) - (raw & sign_bit) if ty.bits > 1 else raw & 1
        if isinstance(ty, FloatType):
            nbytes = ty.bits // 8
            self._check(address, nbytes)
            fmt = "<f" if ty.bits == 32 else "<d"
            return struct.unpack_from(fmt, self.data, address)[0]
        if isinstance(ty, PointerType):
            self._check(address, 8)
            return int.from_bytes(self.data[address:address + 8], "little")
        raise MemoryError_(f"cannot load type {ty}")

    def store(self, address: int, ty: Type, value) -> None:
        if isinstance(ty, IntType):
            nbytes = max(1, (ty.bits + 7) // 8)
            self._check(address, nbytes)
            mask = (1 << (8 * nbytes)) - 1
            self.data[address:address + nbytes] = (int(value) & mask).to_bytes(
                nbytes, "little"
            )
            return
        if isinstance(ty, FloatType):
            nbytes = ty.bits // 8
            self._check(address, nbytes)
            fmt = "<f" if ty.bits == 32 else "<d"
            struct.pack_into(fmt, self.data, address, float(value))
            return
        if isinstance(ty, PointerType):
            self._check(address, 8)
            self.data[address:address + 8] = (int(value) & ((1 << 64) - 1)).to_bytes(
                8, "little"
            )
            return
        raise MemoryError_(f"cannot store type {ty}")

    # Bulk helpers used by workload input generators ---------------------------

    def write_array_f(self, address: int, values, bits: int = 32) -> None:
        self._check(address, (bits // 8) * len(values))
        fmt = "<%d%s" % (len(values), "f" if bits == 32 else "d")
        struct.pack_into(fmt, self.data, address, *values)

    def read_array_f(self, address: int, count: int, bits: int = 32):
        self._check(address, (bits // 8) * count)
        fmt = "<%d%s" % (count, "f" if bits == 32 else "d")
        return list(struct.unpack_from(fmt, self.data, address))

    def write_array_i(self, address: int, values, bits: int = 32) -> None:
        nbytes = bits // 8
        self._check(address, nbytes * len(values))
        mask = (1 << bits) - 1
        for i, value in enumerate(values):
            self.data[address + i * nbytes:address + (i + 1) * nbytes] = (
                (int(value) & mask).to_bytes(nbytes, "little")
            )

    def read_array_i(self, address: int, count: int, bits: int = 32):
        nbytes = bits // 8
        self._check(address, nbytes * count)
        result = []
        sign_bit = 1 << (bits - 1)
        for i in range(count):
            raw = int.from_bytes(
                self.data[address + i * nbytes:address + (i + 1) * nbytes], "little"
            )
            result.append((raw & (sign_bit - 1)) - (raw & sign_bit))
        return result
