"""RTL generation for *reusable* (merged) accelerators — paper Fig. 5.

A reusable accelerator serves several kernels through shared reconfigurable
datapath units.  The generated top module contains:

* one datapath module per (possibly merged) unit of the group, emitted from
  the merged DFG — shared functional units appear once;
* one control FSM per member kernel (each kernel keeps its own control,
  §III-E);
* the global **Ctrl** unit: a ``kernel_select`` input, a configuration
  register driving the datapath multiplexers' reconfiguration bits, and a
  dispatcher that starts the selected kernel's FSM.
"""

from __future__ import annotations

from typing import List, Optional

from ..hls.techlib import DEFAULT_TECHLIB, TechLibrary
from ..merging.merge_driver import MergedSolution
from .accel_gen import DatapathEmitter, _emit_fsm
from .primitives import primitives_for
from .verilog import VerilogDesign, VerilogModule, sanitize


def generate_reusable_accelerator(
    merged: MergedSolution,
    group_index: int = 0,
    name: Optional[str] = None,
    techlib: TechLibrary = DEFAULT_TECHLIB,
) -> str:
    """Verilog for one reusable accelerator of a merged solution.

    ``group_index`` picks which accelerator group to emit (groups are
    ordered as in ``merged.accelerators``); the group must be reusable
    (more than one member kernel) to get a Ctrl unit, but single-member
    groups are emitted too (without one).
    """
    if not merged.accelerators:
        raise ValueError("merged solution has no accelerators")
    if not (0 <= group_index < len(merged.accelerators)):
        raise IndexError(f"no accelerator group {group_index}")
    group = merged.accelerators[group_index]
    top_name = sanitize(name or f"reusable_acc{group_index}")
    design = VerilogDesign(top_name)

    # The units belonging to this group, in pool order.
    group_root = merged.group_roots[group_index]
    group_units = [
        unit for unit, root in zip(merged.units, merged.unit_groups)
        if root == group_root
    ]

    used_resources: List[str] = []
    datapaths = []
    total_config_bits = 0
    for index, unit in enumerate(group_units):
        module = VerilogModule(sanitize(f"ru{index}_{unit.name}")[:60])
        emitter = DatapathEmitter(module, unit.dfg)
        emitter.emit()
        if unit.config_bits:
            module.add_port("cfg", "input", max(1, unit.config_bits))
        design.add_module(module)
        used_resources.extend(n.resource for n in unit.dfg.nodes)
        datapaths.append((module, unit))
        total_config_bits += unit.config_bits

    # One FSM per member kernel (paper: "each maintaining a standalone FSM").
    fsms = []
    for kernel_index, kernel_name in enumerate(group.kernel_names):
        fsm = _emit_fsm(
            design,
            sanitize(f"kfsm{kernel_index}_{kernel_name}")[:60],
            states=8,
        )
        fsms.append(fsm)

    top = VerilogModule(top_name)
    top.add_port("clk", "input")
    top.add_port("rst", "input")
    top.add_port("start", "input")
    select_width = max(1, (max(2, len(fsms)) - 1).bit_length())
    top.add_port("kernel_select", "input", select_width)
    top.add_port("cfg_we", "input")
    top.add_port("cfg_data", "input", 32)
    top.add_port("done", "output")

    # Global Ctrl: the configuration register bank feeding datapath muxes.
    if total_config_bits:
        top.add_net("config_reg", total_config_bits, kind="reg")
        top.add_block(f"""// global Ctrl: reconfiguration bit registers (paper Fig. 5)
always @(posedge clk) begin
  if (rst)
    config_reg <= {total_config_bits}'d0;
  else if (cfg_we)
    config_reg <= {{config_reg[{max(0, total_config_bits - 33)}:0], cfg_data}};
end""")

    # Dispatcher: start exactly the selected kernel's FSM.
    done_terms = []
    for kernel_index, fsm in enumerate(fsms):
        start_net = top.add_net(f"start_k{kernel_index}")
        busy_net = top.add_net(f"busy_k{kernel_index}")
        done_net = top.add_net(f"done_k{kernel_index}")
        top.add_assign(
            start_net.name,
            f"start && (kernel_select == {select_width}'d{kernel_index})",
        )
        top.add_instance(
            fsm.name, f"i_{fsm.name}",
            [("clk", "clk"), ("rst", "rst"), ("start", start_net.name),
             ("busy", busy_net.name), ("done", done_net.name)],
        )
        done_terms.append(done_net.name)
    top.add_assign("done", " | ".join(done_terms) if done_terms else "start")

    # Shared datapath units, configured from the config register slice.
    bit_cursor = 0
    busy_any = (
        "(" + " | ".join(f"busy_k{i}" for i in range(len(fsms))) + ")"
        if fsms else "1'b0"
    )
    for index, (module, unit) in enumerate(datapaths):
        connections = [("clk", "clk"), ("ce", busy_any)]
        if unit.config_bits:
            high = bit_cursor + unit.config_bits - 1
            connections.append(("cfg", f"config_reg[{high}:{bit_cursor}]"))
            bit_cursor += unit.config_bits
        for port in module.ports:
            if port.name in ("clk", "ce", "cfg"):
                continue
            net = top.add_net(f"u{index}_{port.name}", port.width)
            connections.append((port.name, net.name))
        top.add_instance(module.name, f"i_{module.name}", connections)

    design.add_module(top)
    for text in primitives_for(dict.fromkeys(used_resources)):
        design.add_raw(text)
    return design.emit()
