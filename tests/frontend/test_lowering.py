"""Tests for AST → IR lowering: SSA structure, typing, and semantics.

Semantic tests compile mini-C and execute it with the interpreter, comparing
against the obvious Python evaluation (the frontend and interpreter check
each other).
"""

import pytest

from repro.frontend import compile_source
from repro.frontend.errors import SemanticError
from repro.ir import Phi, verify_module

from ..conftest import run_c


class TestStructure:
    def test_loop_produces_phi(self):
        module = compile_source(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            optimize=False,
        )
        func = module.get_function("f")
        header = func.block_by_name("for.header")
        phis = list(header.phis())
        assert len(phis) == 2  # s and i

    def test_straightline_has_no_phi(self):
        module = compile_source(
            "int f(int a) { int b = a + 1; int c = b * 2; return c; }",
            optimize=False,
        )
        func = module.get_function("f")
        assert not any(isinstance(i, Phi) for i in func.instructions())

    def test_if_merge_phi(self):
        module = compile_source(
            "int f(int a) { int x = 0; if (a > 0) x = 1; else x = 2; return x; }",
            optimize=False,
        )
        func = module.get_function("f")
        merge = func.block_by_name("if.end")
        assert len(list(merge.phis())) == 1

    def test_labels_name_blocks(self):
        module = compile_source(
            "void f(int n) { hot: for (int i = 0; i < n; i++) {} }",
            optimize=False,
        )
        func = module.get_function("f")
        names = {b.name for b in func.blocks}
        assert "hot.header" in names and "hot.body" in names

    def test_output_verifies(self, fig2_module_noopt):
        verify_module(fig2_module_noopt)

    def test_dead_code_after_return_pruned(self):
        module = compile_source(
            "int f() { return 1; }",
            optimize=False,
        )
        func = module.get_function("f")
        assert len(func.blocks) == 1


class TestSemantics:
    def test_arithmetic(self):
        result, _ = run_c("int main() { return (7 + 3 * 5) % 11 - 2; }")
        assert result == (7 + 3 * 5) % 11 - 2

    def test_c_division_truncates_toward_zero(self):
        result, _ = run_c("int main() { return (0 - 7) / 2; }")
        assert result == -3
        result, _ = run_c("int main() { return (0 - 7) % 2; }")
        assert result == -1

    def test_float_arithmetic_and_cast(self):
        result, _ = run_c("int main() { float x = 7.5f; return (int)(x * 2.0f); }")
        assert result == 15

    def test_int_float_promotion(self):
        result, _ = run_c("int main() { float x = 3; return (int)(x + 1); }")
        assert result == 4

    def test_comparisons_and_logic(self):
        result, _ = run_c(
            "int main() { int a = 3; int b = 5; return (a < b && b < 10) + (a == 3 || b == 0); }"
        )
        assert result == 2

    def test_short_circuit_avoids_division_by_zero(self):
        result, _ = run_c(
            "int main() { int z = 0; if (z != 0 && 10 / z > 1) return 1; return 2; }"
        )
        assert result == 2

    def test_ternary(self):
        result, _ = run_c("int main() { int a = 5; return a > 3 ? 10 : 20; }")
        assert result == 10

    def test_while_loop(self):
        result, _ = run_c(
            "int main() { int s = 0; int i = 0; while (i < 10) { s += i; i++; } return s; }"
        )
        assert result == 45

    def test_break_continue(self):
        result, _ = run_c(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s += i;
              }
              return s;
            }
            """
        )
        assert result == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self):
        result, _ = run_c(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 5; i++)
                for (int j = 0; j <= i; j++)
                  s += 1;
              return s;
            }
            """
        )
        assert result == 15

    def test_recursion(self):
        result, _ = run_c(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
            "int main() { return fib(12); }"
        )
        assert result == 144

    def test_global_arrays(self):
        result, interp = run_c(
            """
            int table[10];
            int main() {
              for (int i = 0; i < 10; i++) table[i] = i * i;
              int s = 0;
              for (int i = 0; i < 10; i++) s += table[i];
              return s;
            }
            """
        )
        assert result == sum(i * i for i in range(10))
        assert interp.memory.read_array_i(interp.address_of_global("table"), 10) == [
            i * i for i in range(10)
        ]

    def test_2d_arrays(self):
        result, _ = run_c(
            """
            int M[4][6];
            int main() {
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 6; j++)
                  M[i][j] = i * 10 + j;
              return M[3][5];
            }
            """
        )
        assert result == 35

    def test_array_parameter_decay(self):
        result, _ = run_c(
            """
            float A[3][4];
            float rowsum(float M[3][4], int row, int n) {
              float s = 0.0f;
              for (int j = 0; j < n; j++) s += M[row][j];
              return s;
            }
            int main() {
              for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                  A[i][j] = (float)(i + j);
              return (int)rowsum(A, 2, 4);
            }
            """
        )
        assert result == 2 + 3 + 4 + 5

    def test_scalar_global(self):
        result, _ = run_c(
            "int counter;"
            "void bump() { counter = counter + 2; }"
            "int main() { bump(); bump(); bump(); return counter; }"
        )
        assert result == 6

    def test_bitwise_and_shifts(self):
        result, _ = run_c("int main() { return ((0xF & 0) | (5 << 2)) >> 1; }"
                          .replace("0xF & 0", "15 & 0"))
        assert result == 10

    def test_unary_ops(self):
        result, _ = run_c("int main() { return -(-5) + !0 + (~0 + 1); }")
        assert result == 5 + 1 + 0

    def test_sqrt_builtin(self):
        result, _ = run_c("int main() { return (int)(sqrtf(144.0f)); }")
        assert result == 12

    def test_fabs_builtin(self):
        result, _ = run_c("int main() { return (int)fabsf(0.0f - 8.5f); }")
        assert result == 8

    def test_int_wrapping(self):
        result, _ = run_c("int main() { int x = 2147483647; return x + 1 < 0; }")
        assert result == 1


class TestSemanticErrors:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { return x; }")

    def test_undeclared_function(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { return g(); }")

    def test_redeclaration_in_scope(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { int x = 1; int x = 2; return x; }")

    def test_shadowing_allowed(self):
        result, _ = run_c(
            "int main() { int x = 1; { int x = 2; } return x; }"
        )
        assert result == 1

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { break; return 0; }")

    def test_assign_to_array(self):
        with pytest.raises(SemanticError):
            compile_source("int A[4]; int main() { A = 0; return 0; }")

    def test_wrong_arg_count(self):
        with pytest.raises(SemanticError):
            compile_source("int f(int a) { return a; } int main() { return f(); }")

    def test_void_return_with_value(self):
        with pytest.raises(SemanticError):
            compile_source("void f() { return 1; }")

    def test_scalar_subscript(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { int x = 1; return x[0]; }")
