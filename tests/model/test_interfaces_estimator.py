"""Tests for the accelerator model: interface plans, configuration
generation heuristics (paper §III-C), and performance/area estimation."""

import pytest

from repro.frontend import compile_source
from repro.analysis import WPST
from repro.hls import AGU_AREA_UM2, DEFAULT_TECHLIB, FIFO_AREA_UM2, LSU_AREA_UM2
from repro.interp import profile_module
from repro.model import (
    AcceleratorModel,
    InterfaceAssignment,
    InterfaceKind,
    InterfacePlan,
)
from repro.ir import Load, Store


def build(src, entry="main"):
    module = compile_source(src)
    profile = profile_module(module, entry=entry)
    wpst = WPST(module, entry_function=entry)
    model = AcceleratorModel(module, profile)
    return module, profile, wpst, model


def region_node(wpst, func_name, region_name):
    for node in wpst.ctrl_flow_vertices():
        if node.function.name == func_name and node.name == region_name:
            return node
    raise AssertionError(f"no region {region_name} in {func_name}")


STREAM_LOOP = """
float x[128]; float y[128];
void initd(int n) { for (int i = 0; i < n; i++) { x[i] = (float)i; y[i] = 0.0f; } }
void saxpy(int n, float k, float b) {
  linear: for (int i = 0; i < n; i++) y[i] = k * x[i] + b;
}
int main() {
  initd(128);
  for (int r = 0; r < 10; r++) saxpy(128, 2.0f, 1.0f);
  return 0;
}
"""

REUSE_LOOP = """
float A[24][24]; float w[24]; float out[24];
void initd(int n) {
  for (int i = 0; i < n; i++) {
    w[i] = (float)(i % 5); out[i] = 0.0f;
    for (int j = 0; j < n; j++) A[i][j] = (float)(i + j);
  }
}
void matvec(int n) {
  rows: for (int i = 0; i < n; i++)
    dot: for (int j = 0; j < n; j++)
      out[i] += A[i][j] * w[j];
}
int main() { initd(24); for (int r = 0; r < 10; r++) matvec(24); return 0; }
"""


class TestInterfacePlan:
    def test_counts(self):
        module = compile_source(STREAM_LOOP)
        func = module.get_function("saxpy")
        accesses = [i for i in func.instructions() if isinstance(i, (Load, Store))]
        plan = InterfacePlan()
        plan.assign(InterfaceAssignment(accesses[0], InterfaceKind.DECOUPLED))
        plan.assign(InterfaceAssignment(accesses[1], InterfaceKind.COUPLED))
        counts = plan.counts()
        assert counts["decoupled"] == 1 and counts["coupled"] == 1

    def test_interface_area_composition(self):
        module = compile_source(STREAM_LOOP)
        func = module.get_function("saxpy")
        accesses = [i for i in func.instructions() if isinstance(i, (Load, Store))]
        plan = InterfacePlan()
        plan.assign(InterfaceAssignment(accesses[0], InterfaceKind.DECOUPLED))
        assert plan.interface_area(DEFAULT_TECHLIB) == AGU_AREA_UM2 + FIFO_AREA_UM2
        plan.assign(InterfaceAssignment(accesses[1], InterfaceKind.COUPLED))
        assert plan.interface_area(DEFAULT_TECHLIB) == (
            AGU_AREA_UM2 + FIFO_AREA_UM2 + LSU_AREA_UM2
        )

    def test_spad_group_sharing(self):
        module = compile_source(REUSE_LOOP)
        func = module.get_function("matvec")
        accesses = [i for i in func.instructions() if isinstance(i, (Load, Store))]
        plan = InterfacePlan()
        group = object()
        for inst in accesses[:2]:
            plan.assign(InterfaceAssignment(
                inst, InterfaceKind.SCRATCHPAD, spad_group=group, spad_bytes=512
            ))
        single = InterfacePlan()
        single.assign(InterfaceAssignment(
            accesses[0], InterfaceKind.SCRATCHPAD, spad_group=group,
            spad_bytes=512,
        ))
        # Two accesses to one buffer cost the same as one (shared SRAM+DMA).
        assert plan.interface_area(DEFAULT_TECHLIB) == pytest.approx(
            single.interface_area(DEFAULT_TECHLIB)
        )

    def test_dma_cycles_direction_aware(self):
        module = compile_source(REUSE_LOOP)
        func = module.get_function("matvec")
        loads = [i for i in func.instructions() if isinstance(i, Load)]
        plan = InterfacePlan()
        group = object()
        plan.assign(InterfaceAssignment(
            loads[0], InterfaceKind.SCRATCHPAD, spad_group=group, spad_bytes=80
        ))
        read_only = plan.dma_cycles_per_invocation(DEFAULT_TECHLIB)
        stores = [i for i in func.instructions() if isinstance(i, Store)]
        plan.assign(InterfaceAssignment(
            stores[0], InterfaceKind.SCRATCHPAD, spad_group=group, spad_bytes=80
        ))
        read_write = plan.dma_cycles_per_invocation(DEFAULT_TECHLIB)
        assert read_write == 2 * read_only


class TestConfigurationHeuristics:
    def test_stream_accesses_get_decoupled(self):
        module, profile, wpst, model = build(STREAM_LOOP)
        node = region_node(wpst, "saxpy", "region:linear")
        ctx = model.context(node.function)
        config = model.build_config(node.region, ctx, factor=1, mode="full")
        counts = config.plan.counts()
        assert counts["decoupled"] == 2
        assert counts["coupled"] == 0

    def test_reused_vector_gets_scratchpad(self):
        """w[j] is read n times per row: count >= beta * footprint."""
        module, profile, wpst, model = build(REUSE_LOOP)
        node = region_node(wpst, "matvec", "region:rows")
        ctx = model.context(node.function)
        config = model.build_config(node.region, ctx, factor=1, mode="full")
        kinds = {
            a.inst: a.kind for a in config.plan.assignments.values()
        }
        w_access = next(
            a for a in config.plan.assignments.values()
            if ctx.access.info(a.inst).base.name == "w"
        )
        assert w_access.kind is InterfaceKind.SCRATCHPAD

    def test_coupled_only_mode(self):
        module, profile, wpst, model = build(STREAM_LOOP)
        node = region_node(wpst, "saxpy", "region:linear")
        ctx = model.context(node.function)
        config = model.build_config(node.region, ctx, factor=1, mode="coupled_only")
        counts = config.plan.counts()
        assert counts["coupled"] > 0
        assert counts["decoupled"] == counts["scratchpad"] == 0

    def test_innermost_loops_pipelined(self):
        module, profile, wpst, model = build(REUSE_LOOP)
        node = region_node(wpst, "matvec", "region:rows")
        ctx = model.context(node.function)
        config = model.build_config(node.region, ctx, factor=1, mode="full")
        pipelined = [p.loop.name for p in config.loop_plans.values() if p.pipelined]
        assert pipelined == ["dot"]

    def test_unroll_lands_on_legal_loop(self):
        """dot has an accumulator; the unroll goes to the outer rows loop."""
        module, profile, wpst, model = build(REUSE_LOOP)
        node = region_node(wpst, "matvec", "region:rows")
        ctx = model.context(node.function)
        config = model.build_config(node.region, ctx, factor=4, mode="full")
        unrolls = {p.loop.name: p.unroll for p in config.loop_plans.values()}
        # After accumulator promotion the inner dot loop has no carried
        # memory dependence, so the unroll lands on the innermost loop.
        assert max(unrolls.values()) == 4

    def test_dependent_loop_not_unrolled(self):
        src = """
        float v[256];
        void scan(int n) {
          pref: for (int i = 1; i < n; i++) v[i] = v[i] + v[i-1];
        }
        int main() { for (int r = 0; r < 20; r++) scan(256); return 0; }
        """
        module, profile, wpst, model = build(src)
        node = region_node(wpst, "scan", "region:pref")
        ctx = model.context(node.function)
        config = model.build_config(node.region, ctx, factor=8, mode="full")
        assert all(p.unroll == 1 for p in config.loop_plans.values())


class TestEstimation:
    def test_candidates_profitable_and_pareto_diverse(self):
        module, profile, wpst, model = build(STREAM_LOOP)
        node = region_node(wpst, "saxpy", "region:linear")
        estimates = model.candidates(node)
        assert estimates
        for est in estimates:
            assert est.is_profitable
            assert est.area > 0
            assert est.cycles > 0
        labels = {e.config.label for e in estimates}
        assert len(labels) > 1  # multiple configurations explored

    def test_coupled_only_model_restricts(self):
        module = compile_source(STREAM_LOOP)
        profile = profile_module(module)
        wpst = WPST(module)
        model = AcceleratorModel(module, profile, coupled_only=True)
        node = region_node(wpst, "saxpy", "region:linear")
        for est in model.candidates(node):
            counts = est.interface_counts
            assert counts["decoupled"] == 0 and counts["scratchpad"] == 0

    def test_unrolling_improves_best_latency(self):
        module, profile, wpst, model = build(STREAM_LOOP)
        node = region_node(wpst, "saxpy", "region:linear")
        estimates = model.candidates(node)
        by_label = {e.config.label: e for e in estimates}
        if "u1/full" in by_label and "u8/full" in by_label:
            assert by_label["u8/full"].cycles < by_label["u1/full"].cycles
            assert by_label["u8/full"].area > by_label["u1/full"].area

    def test_region_with_call_rejected(self):
        src = """
        float g[8];
        float helper(float x) { return x * 2.0f; }
        void k(int n) {
          loop: for (int i = 0; i < n; i++) g[i % 8] = helper((float)i);
        }
        int main() { for (int r = 0; r < 50; r++) k(64); return 0; }
        """
        module, profile, wpst, model = build(src)
        node = region_node(wpst, "k", "region:loop")
        assert model.candidates(node) == []

    def test_unexecuted_region_rejected(self):
        src = """
        float g[8];
        void cold(int n) { loop: for (int i = 0; i < n; i++) g[i % 8] = 1.0f; }
        int main() { return 0; }
        """
        module, profile, wpst, model = build(src)
        node = region_node(wpst, "cold", "region:loop")
        assert model.candidates(node) == []

    def test_estimates_cached(self):
        module, profile, wpst, model = build(STREAM_LOOP)
        node = region_node(wpst, "saxpy", "region:linear")
        first = model.candidates(node)
        second = model.candidates(node)
        assert first is second

    def test_speedup_equation_consistency(self):
        """Eq. 1: solution speedup from saved seconds."""
        from repro.selection import Solution

        module, profile, wpst, model = build(STREAM_LOOP)
        node = region_node(wpst, "saxpy", "region:linear")
        best = max(model.candidates(node), key=lambda e: e.saved_seconds)
        solution = Solution((best,))
        t_all = profile.total_seconds
        expected = t_all / (t_all - best.kernel_seconds + best.accel_seconds)
        assert solution.speedup(t_all) == pytest.approx(expected)


class TestPerNestExploration:
    MULTI_NEST = """
    float a[128]; float b[128]; float c[64]; float d[64];
    void k(int n, int m) {
      hot: for (int i = 0; i < n; i++) b[i] = a[i] * 2.0f + 1.0f;
      cold: for (int i = 0; i < m; i++) d[i] = c[i] + 0.5f;
    }
    int main() {
      for (int i = 0; i < 128; i++) { a[i] = (float)i; c[i % 64] = (float)i; }
      for (int r = 0; r < 20; r++) k(128, 64);
      return 0;
    }
    """

    def test_per_nest_configs_generated(self):
        module, profile, wpst, model = build(self.MULTI_NEST)
        node = next(
            n for n in wpst.ctrl_flow_vertices()
            if n.function.name == "k"
            and n.region.blocks > {module.get_function("k").entry} - {None}
            and len([l for l in model.context(n.function).loop_info.loops
                     if l.blocks <= n.region.blocks]) >= 2
        )
        labels = {e.config.label for e in model.candidates(node)}
        per_nest = [l for l in labels if "@" in l]
        assert per_nest, f"no per-nest configs among {labels}"

    def test_per_nest_unrolls_only_one_nest(self):
        module, profile, wpst, model = build(self.MULTI_NEST)
        node = next(
            n for n in wpst.ctrl_flow_vertices()
            if n.function.name == "k"
            and len([l for l in model.context(n.function).loop_info.loops
                     if l.blocks <= n.region.blocks]) >= 2
        )
        ctx = model.context(node.function)
        nests = model._top_level_nests(node.region, ctx)
        assert len(nests) >= 2
        config = model.build_config(
            node.region, ctx, 8, "full", only_nest=nests[0]
        )
        unrolled = [p.loop for p in config.loop_plans.values() if p.unroll > 1]
        assert unrolled
        for loop in unrolled:
            assert nests[0].contains_loop(loop)
