"""In-order scalar CPU cost model (the CVA6-tile substitute).

The paper profiles applications on a CVA6 RISC-V tile; offline we charge each
executed IR instruction a fixed cycle cost on an in-order single-issue core.
Durations in cycles divided by :data:`CPU_FREQ_HZ` give seconds, which is all
Equation 1 needs.
"""

from __future__ import annotations

from typing import Dict

# The CVA6-class in-order core clocks in the same 500 MHz class as the
# accelerators when both target the Nangate45 PDK (the 1.7 GHz figure of
# [32] is for 22FDX).  Keeping CPU and accelerator frequency equal makes the
# comparison a pure microarchitecture/parallelism comparison.
CPU_FREQ_HZ = 5.0e8

# Cycles per executed instruction, by resource class (see
# :func:`repro.ir.resource_class`).  Values follow published CVA6 latencies:
# single-issue ALU, 3-cycle multiplier, iterative divider, 2-cycle D$ hit,
# a handful of cycles for the (non-pipelined) FPU.
CPU_CYCLES: Dict[str, float] = {
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1, "shl": 1, "shr": 1,
    "neg": 1, "not": 1,
    "mul": 3, "div": 20, "rem": 20,
    "fadd": 5, "fsub": 5, "fmul": 5, "fdiv": 30, "fneg": 1,
    "fsqrt": 25, "fabs": 1,
    "icmp": 1, "fcmp": 2, "select": 1,
    "sitofp": 2, "fptosi": 2, "sext": 1, "zext": 1, "trunc": 1,
    "fpext": 1, "fptrunc": 1,
    "load": 2, "store": 1,
    "gep": 1,          # address arithmetic folds into ALU ops
    "phi": 0,          # register renaming artifact, no dynamic cost
    "control": 1,      # branch/return
    "call": 2,         # call overhead on top of the callee's own cost
    "alloca": 0,       # stack-pointer bump, amortized
}


def instruction_cycles(resource: str) -> float:
    """CPU cycles for one dynamic instruction of the given resource class."""
    try:
        return CPU_CYCLES[resource]
    except KeyError:
        raise KeyError(f"no CPU cost for resource class {resource!r}") from None


def cycles_to_seconds(cycles: float) -> float:
    return cycles / CPU_FREQ_HZ
