"""Operation matching between two datapath units (paper §III-E).

Merging two basic-block datapaths shares functional units of the same
resource class and width.  A matched operation pair needs operand
multiplexers unless its producers are matched to each other as well — so
the matcher greedily prefers pairs whose operands are already matched,
maximizing shared wiring and minimizing mux overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hls.dfg import DFG, DFGNode
from ..hls.techlib import CONFIG_BIT_AREA_UM2, TechLibrary


@dataclass
class MatchResult:
    """Outcome of matching unit B onto unit A."""

    pairs: List[Tuple[DFGNode, DFGNode]] = field(default_factory=list)
    shared_area: float = 0.0       # functional-unit area saved by sharing
    mux_area: float = 0.0          # multiplexers inserted on shared inputs
    config_bits: int = 0           # reconfiguration bit registers for muxes

    @property
    def net_saving(self) -> float:
        return self.shared_area - self.mux_area - (
            self.config_bits * CONFIG_BIT_AREA_UM2
        )


def _op_key(node: DFGNode) -> Tuple[str, int]:
    # Accesses of any width share the same port logic; compute ops share by
    # (resource, width) so an f32 adder never absorbs an f64 one.
    return (node.resource, 64 if node.bits > 32 else 32)


def match_units(
    unit_a: DFG, unit_b: DFG, techlib: TechLibrary
) -> MatchResult:
    """Greedy producer-aware matching of ``unit_b``'s ops onto ``unit_a``."""
    result = MatchResult()
    by_key_a: Dict[Tuple[str, int], List[DFGNode]] = {}
    for node in unit_a.nodes:
        by_key_a.setdefault(_op_key(node), []).append(node)

    matched_a: Dict[DFGNode, DFGNode] = {}
    matched_b: Dict[DFGNode, DFGNode] = {}

    # Single pass in program order: producers precede consumers, so matched
    # producer pairs steer their consumers toward mux-free matches.
    for node_b in unit_b.nodes:
        candidates = [
            node_a
            for node_a in by_key_a.get(_op_key(node_b), [])
            if node_a not in matched_a
        ]
        if not candidates:
            continue
        best = None
        best_bonus = -1
        for node_a in candidates:
            bonus = _producer_bonus(node_a, node_b, matched_b)
            if bonus > best_bonus:
                best, best_bonus = node_a, bonus
        matched_a[best] = node_b
        matched_b[node_b] = best
        result.pairs.append((best, node_b))

    clock_area = techlib  # alias for brevity below
    for node_a, node_b in result.pairs:
        key = _op_key(node_a)
        result.shared_area += clock_area.area(key[0], key[1])
        # One mux per operand position whose producers differ.
        arity = max(len(node_a.preds), len(node_b.preds))
        for slot in range(arity):
            prod_a = node_a.preds[slot] if slot < len(node_a.preds) else None
            prod_b = node_b.preds[slot] if slot < len(node_b.preds) else None
            if prod_b is not None and matched_b.get(prod_b) is prod_a and prod_a is not None:
                continue  # shared wire, no mux
            result.mux_area += clock_area.mux_area(node_a.bits, 2)
            result.config_bits += 1
    return result


def _producer_bonus(
    node_a: DFGNode, node_b: DFGNode, matched_b: Dict[DFGNode, DFGNode]
) -> int:
    """Operand slots whose producers are already matched to each other."""
    bonus = 0
    for slot in range(min(len(node_a.preds), len(node_b.preds))):
        if matched_b.get(node_b.preds[slot]) is node_a.preds[slot]:
            bonus += 1
    return bonus


def unit_fu_area(unit: DFG, techlib: TechLibrary) -> float:
    """Raw functional-unit area of one datapath unit (no sharing)."""
    total = 0.0
    for node in unit.nodes:
        key = _op_key(node)
        total += techlib.area(key[0], key[1])
    return total
