"""Andersen points-to tests: site discovery, aliasing verdicts, and the
external-argument conservatism the restrict model lacks."""

from repro.dataflow import PointsToAnalysis
from repro.frontend import compile_source
from repro.ir import GetElementPtr, Load, Store


def pointer_args(func):
    return [a for a in func.arguments if a.type.is_pointer]


TWO_GLOBALS = """
float A[8];
float B[8];
int main() {
  for (int i = 0; i < 8; i = i + 1) { B[i] = A[i]; }
  return 0;
}
"""


class TestGlobals:
    def test_each_global_points_to_own_site(self):
        module = compile_source(TWO_GLOBALS, "t")
        pta = PointsToAnalysis(module)
        a = module.globals["A"]
        b = module.globals["B"]
        assert pta.site_labels(a) == ["@A"]
        assert pta.site_labels(b) == ["@B"]
        assert not pta.may_alias(a, b)
        assert pta.may_alias(a, a)

    def test_gep_inherits_base_sites(self):
        module = compile_source(TWO_GLOBALS, "t")
        pta = PointsToAnalysis(module)
        geps = [
            inst
            for inst in module.get_function("main").instructions()
            if isinstance(inst, GetElementPtr)
        ]
        assert geps
        for gep in geps:
            assert pta.points_to(gep) == pta.points_to(gep.base)


CALLED_KERNEL = """
float A[16]; float B[16];
void kernel(float *dst, float *src, int n) {
  for (int i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
}
int main() { kernel(B, A, 16); return 0; }
"""


class TestCalls:
    def test_arguments_resolve_to_actual_globals(self):
        module = compile_source(CALLED_KERNEL, "t")
        pta = PointsToAnalysis(module)
        dst, src = pointer_args(module.get_function("kernel"))
        assert pta.site_labels(dst) == ["@B"]
        assert pta.site_labels(src) == ["@A"]
        assert not pta.may_alias(dst, src)

    def test_aliased_call_merges_sites(self):
        source = CALLED_KERNEL.replace("kernel(B, A, 16)", "kernel(A, A, 16)")
        module = compile_source(source, "t")
        pta = PointsToAnalysis(module)
        dst, src = pointer_args(module.get_function("kernel"))
        assert pta.site_labels(dst) == ["@A"]
        assert pta.may_alias(dst, src)


UNCALLED_KERNEL = """
void kernel(float *dst, float *src, int n) {
  for (int i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
}
"""


class TestExternalArguments:
    def test_external_args_may_alias_each_other(self):
        """No intra-module caller: the two pointer arguments could be bound
        to one buffer — exactly what blanket restrict denied."""
        module = compile_source(UNCALLED_KERNEL, "t")
        pta = PointsToAnalysis(module)
        dst, src = pointer_args(module.get_function("kernel"))
        assert all(s.is_external for s in pta.points_to(dst))
        assert pta.may_alias(dst, src)
        assert not pta.must_not_alias(dst, src)


class TestAccessBases:
    def test_store_and_load_bases_disambiguated(self):
        module = compile_source(TWO_GLOBALS, "t")
        pta = PointsToAnalysis(module)
        main = module.get_function("main")
        stores = [i for i in main.instructions() if isinstance(i, Store)]
        loads = [i for i in main.instructions() if isinstance(i, Load)]
        assert stores and loads
        assert not pta.may_alias(stores[0].pointer, loads[0].pointer)
