"""Tests for the diagnostics data model (Severity, Location, LintResult)."""

import json

from repro.diagnostics import Diagnostic, LintResult, Location, Severity


def diag(code="IR001", severity=Severity.WARNING, **kwargs):
    return Diagnostic(
        code=code,
        severity=severity,
        location=kwargs.pop("location", Location(function="f", block="entry")),
        message=kwargs.pop("message", "something looks off"),
        **kwargs,
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.NOTE < Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_lowercase(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"


class TestLocation:
    def test_str_joins_parts(self):
        loc = Location(function="f", block="entry", instruction="%x")
        assert str(loc) == "f/entry/%x"

    def test_str_with_detail(self):
        loc = Location(function="f", detail="loop L0")
        assert str(loc) == "f (loop L0)"

    def test_empty_location(self):
        assert str(Location()) == "<module>"

    def test_to_dict(self):
        loc = Location(function="f", block="b")
        assert loc.to_dict()["function"] == "f"
        assert loc.to_dict()["instruction"] is None


class TestDiagnostic:
    def test_render_contains_code_and_severity(self):
        text = diag(suggestion="fix it").render()
        assert "[IR001]" in text
        assert text.startswith("warning:")
        assert "suggestion: fix it" in text

    def test_to_dict_omits_empty_suggestion(self):
        assert "suggestion" not in diag().to_dict()
        assert diag(suggestion="s").to_dict()["suggestion"] == "s"


class TestLintResult:
    def test_empty_result_is_clean(self):
        result = LintResult(checked_rules=["IR001", "IR002"])
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 0
        assert result.max_severity is None
        assert "clean" in result.summary()

    def test_error_sets_exit_code(self):
        result = LintResult(diagnostics=[diag(severity=Severity.ERROR)])
        assert result.exit_code() == 1
        assert result.max_severity is Severity.ERROR

    def test_warning_only_fails_in_strict_mode(self):
        result = LintResult(diagnostics=[diag(severity=Severity.WARNING)])
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_by_code_and_severity(self):
        result = LintResult(diagnostics=[
            diag(code="IR001"),
            diag(code="IR004", severity=Severity.ERROR),
        ])
        assert len(result.by_code("IR001")) == 1
        assert len(result.errors) == 1
        assert len(result.warnings) == 1

    def test_summary_counts(self):
        result = LintResult(diagnostics=[
            diag(severity=Severity.ERROR),
            diag(severity=Severity.WARNING),
            diag(severity=Severity.WARNING),
        ])
        assert result.summary() == "1 error, 2 warnings"

    def test_json_roundtrip(self):
        result = LintResult(
            diagnostics=[diag(severity=Severity.ERROR)],
            checked_rules=["IR001"],
        )
        data = json.loads(result.to_json())
        assert data["exit_code"] == 1
        assert data["checked_rules"] == ["IR001"]
        assert data["diagnostics"][0]["code"] == "IR001"
