/* The paper's Fig. 2 example application: two accelerable functions
 * (a linear map and a row-wise dot product) driven from main.
 * Try: python -m repro lint examples/fig2.c
 *      python -m repro run examples/fig2.c
 */
float x[256]; float y[256];
float A[48][48]; float B[48][48]; float z[48];

void initdata(int n, int m) {
  for (int i = 0; i < n; i++) {
    z[i] = 0.0f;
    for (int j = 0; j < n; j++) {
      A[i][j] = (float)(i + j);
      B[i][j] = (float)(i - j);
    }
  }
  for (int i = 0; i < m; i++) { x[i] = (float)i; y[i] = 0.0f; }
}

void func0(int n, float k, float b) {
  linear: for (int i = 0; i < n; i++) {
    y[i] = k * x[i] + b;
  }
}

void func1(int n, int m) {
  outer: for (int i = 0; i < n; i++) {
    dot_product: for (int j = 0; j < m; j++) {
      z[i] += A[i][j] * B[i][j];
    }
  }
}

int main() {
  initdata(48, 256);
  for (int r = 0; r < 16; r++) {
    func0(256, 2.0f, 1.0f);
    func1(48, 48);
  }
  return 0;
}
