"""IR module: a compilation unit holding functions and globals."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .function import Function
from .types import Type
from .values import GlobalVariable


class Module:
    """A whole application: functions plus module-level global variables."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    def add_function(
        self,
        name: str,
        return_type: Type,
        param_types: List[Type],
        param_names: Optional[List[str]] = None,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"function {name} already exists in module {self.name}")
        func = Function(name, return_type, param_types, param_names, parent=self)
        self.functions[name] = func
        return func

    def add_global(
        self, name: str, allocated_type: Type, initializer=None
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"global {name} already exists in module {self.name}")
        var = GlobalVariable(allocated_type, name, initializer)
        self.globals[name] = var
        return var

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name} in module {self.name}") from None

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"no global named {name} in module {self.name}") from None

    def defined_functions(self) -> Iterator[Function]:
        for func in self.functions.values():
            if not func.is_declaration:
                yield func

    def __str__(self) -> str:
        parts = [f"; module {self.name}"]
        for var in self.globals.values():
            parts.append(f"@{var.name} = global {var.allocated_type}")
        for func in self.functions.values():
            parts.append(str(func))
        return "\n\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name} ({len(self.functions)} functions)>"
