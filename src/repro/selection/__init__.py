"""Dynamic-programming candidate selection (Algorithm 1)."""

from .solution import (
    EMPTY_SOLUTION,
    Solution,
    combine,
    filter_front,
    pareto,
)
from .pruning import PruneHeuristic
from .knapsack import CandidateSelector, select_candidates

__all__ = [
    "EMPTY_SOLUTION", "Solution", "combine", "filter_front", "pareto",
    "PruneHeuristic", "CandidateSelector", "select_candidates",
]
