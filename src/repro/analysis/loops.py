"""Natural-loop detection and loop-nest construction."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import BasicBlock, CondBranch, Constant, Function, ICmp, Phi, Value
from .cfg import predecessor_map
from .dominators import DominatorTree, dominator_tree


class Loop:
    """A natural loop: header plus the set of blocks on paths to its latches."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def name(self) -> str:
        """Human-readable loop name derived from the header block label."""
        base = self.header.name
        for suffix in (".header", ".cond"):
            if base.endswith(suffix):
                return base[: -len(suffix)]
        return base

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def contains_block(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def contains_loop(self, other: "Loop") -> bool:
        node: Optional[Loop] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def exit_edges(self) -> List[tuple]:
        """Edges (src, dst) leaving the loop."""
        result = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks:
                    result.append((block, succ))
        return result

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if it exists."""
        outside = [p for p in self.header.predecessors if p not in self.blocks]
        if len(outside) == 1:
            return outside[0]
        return None

    def induction_phi(self) -> Optional[Phi]:
        """The canonical induction phi ``i = phi [init, preheader], [i+step, latch]``.

        Returns the first integer phi in the header whose back-edge value is
        an add/sub of the phi by a loop-invariant amount.
        """
        for phi in self.header.phis():
            if not phi.type.is_int:
                continue
            for value, pred in phi.incoming():
                if pred not in self.blocks:
                    continue
                if _is_increment_of(value, phi):
                    return phi
        return None

    def trip_count_estimate(self) -> Optional[int]:
        """Constant trip count when the bounds are literal, else None."""
        phi = self.induction_phi()
        if phi is None:
            return None
        init = step = bound = None
        for value, pred in phi.incoming():
            if pred in self.blocks:
                step = _increment_amount(value, phi)
            elif isinstance(value, Constant):
                init = value.value
        term = self.header.terminator
        if not isinstance(term, CondBranch):
            return None
        cond = term.condition
        if isinstance(cond, ICmp) and cond.operands[0] is phi:
            if isinstance(cond.operands[1], Constant):
                bound = cond.operands[1].value
                predicate = cond.predicate
            else:
                return None
        else:
            return None
        if init is None or step is None or bound is None or step == 0:
            return None
        if predicate == "slt" and step > 0:
            return max(0, -(-(bound - init) // step))
        if predicate == "sle" and step > 0:
            return max(0, -(-(bound - init + 1) // step))
        if predicate == "sgt" and step < 0:
            return max(0, -(-(init - bound) // -step))
        if predicate == "sge" and step < 0:
            return max(0, -(-(init - bound + 1) // -step))
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop {self.name} depth={self.depth} blocks={len(self.blocks)}>"


def _is_increment_of(value: Value, phi: Phi) -> bool:
    from ..ir import BinaryOp

    return (
        isinstance(value, BinaryOp)
        and value.opcode in ("add", "sub")
        and (value.lhs is phi or (value.opcode == "add" and value.rhs is phi))
    )


def _increment_amount(value: Value, phi: Phi) -> Optional[int]:
    from ..ir import BinaryOp

    if not isinstance(value, BinaryOp):
        return None
    other = None
    if value.lhs is phi:
        other = value.rhs
    elif value.rhs is phi and value.opcode == "add":
        other = value.lhs
    if isinstance(other, Constant):
        return other.value if value.opcode == "add" else -other.value
    return None


class LoopInfo:
    """All natural loops of a function, organized as a forest."""

    def __init__(self, func: Function, domtree: Optional[DominatorTree] = None):
        self.func = func
        self.domtree = domtree or dominator_tree(func)
        self.loops: List[Loop] = []
        self._loop_of_header: Dict[BasicBlock, Loop] = {}
        self._innermost: Dict[BasicBlock, Loop] = {}
        self._build()

    def _build(self) -> None:
        preds_of = predecessor_map(self.func)
        # Find back edges (tail -> header where header dominates tail).
        for block in self.func.blocks:
            if not self.domtree.contains(block):
                continue
            for succ in block.successors:
                if self.domtree.dominates(succ, block):
                    loop = self._loop_of_header.get(succ)
                    if loop is None:
                        loop = Loop(succ)
                        self._loop_of_header[succ] = loop
                        self.loops.append(loop)
                    loop.latches.append(block)
                    self._collect_body(loop, block, preds_of)
        self._nest_loops()

    def _collect_body(self, loop: Loop, latch: BasicBlock, preds_of) -> None:
        stack = [latch]
        while stack:
            block = stack.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            stack.extend(preds_of[block])

    def _nest_loops(self) -> None:
        # Sort by size so each loop's parent is the smallest enclosing loop.
        by_size = sorted(self.loops, key=lambda l: len(l.blocks))
        for i, inner in enumerate(by_size):
            for outer in by_size[i + 1:]:
                if inner.header in outer.blocks and outer is not inner:
                    inner.parent = outer
                    outer.children.append(inner)
                    break
        for loop in by_size:  # innermost-first: don't overwrite
            for block in loop.blocks:
                if block not in self._innermost:
                    self._innermost[block] = loop

    # Queries -----------------------------------------------------------------

    @property
    def top_level(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def loop_for_header(self, header: BasicBlock) -> Optional[Loop]:
        return self._loop_of_header.get(header)

    def innermost_loop(self, block: BasicBlock) -> Optional[Loop]:
        return self._innermost.get(block)

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.innermost_loop(block)
        return loop.depth if loop is not None else 0
