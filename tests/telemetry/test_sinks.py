"""Tests for the telemetry sinks: in-memory, JSONL, Chrome trace."""

import io
import json

from repro.telemetry import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    Telemetry,
    chrome_trace_events,
    validate_chrome_trace,
)


def _recorded_telemetry():
    tele = Telemetry()
    with tele.span("outer", workload="w"):
        with tele.span("inner"):
            pass
    tele.count("n", 3)
    tele.record("t", 0.25)
    return tele


class TestInMemorySink:
    def test_collects_spans_in_completion_order(self):
        sink = InMemorySink()
        tele = Telemetry(sinks=[sink])
        with tele.span("outer"):
            with tele.span("inner"):
                pass
        # Children finish before their parents.
        assert sink.span_names() == ["inner", "outer"]

    def test_flush_captures_snapshot(self):
        sink = InMemorySink()
        tele = Telemetry(sinks=[sink])
        tele.count("n")
        assert sink.snapshot is None
        tele.close()
        assert sink.snapshot["counters"] == {"n": 1}


class TestJsonlSink:
    def test_writes_span_and_metric_lines(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tele = Telemetry(sinks=[sink])
        with tele.span("outer", k=1):
            with tele.span("inner"):
                pass
        tele.count("n", 2)
        tele.record("t", 0.5)
        tele.close()
        lines = [json.loads(line) for line in open(path)]
        events = [line["event"] for line in lines]
        assert events == ["span", "span", "counter", "timing"]
        spans = {line["name"]: line for line in lines if line["event"] == "span"}
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["depth"] == 0
        assert spans["outer"]["attrs"] == {"k": 1}
        counter = next(l for l in lines if l["event"] == "counter")
        assert counter == {"event": "counter", "name": "n", "value": 2}
        timing = next(l for l in lines if l["event"] == "timing")
        assert timing["count"] == 1 and timing["total"] == 0.5

    def test_accepts_open_handle(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        tele = Telemetry(sinks=[sink])
        with tele.span("a"):
            pass
        tele.close()
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines and lines[0]["name"] == "a"


class TestChromeTrace:
    def test_events_cover_spans_and_counters(self):
        tele = _recorded_telemetry()
        events = chrome_trace_events(tele)
        phases = [event["ph"] for event in events]
        assert phases.count("M") == 1
        assert phases.count("X") == 2
        assert phases.count("C") == 1
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"] == {"value": 3}

    def test_sink_writes_valid_payload(self, tmp_path):
        path = str(tmp_path / "trace.json")
        sink = ChromeTraceSink(path)
        tele = Telemetry(sinks=[sink])
        with tele.span("outer"):
            pass
        tele.count("n")
        tele.close()
        payload = json.load(open(path))
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"

    def test_sink_accepts_handle(self):
        buffer = io.StringIO()
        sink = ChromeTraceSink(buffer)
        tele = Telemetry(sinks=[sink])
        with tele.span("a"):
            pass
        tele.close()
        assert validate_chrome_trace(json.loads(buffer.getvalue())) == []


class TestValidateChromeTrace:
    def test_valid_trace_is_empty(self):
        payload = {"traceEvents": chrome_trace_events(_recorded_telemetry())}
        assert validate_chrome_trace(payload) == []

    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_non_list_events(self):
        assert validate_chrome_trace({"traceEvents": {}}) != []

    def test_flags_empty_events(self):
        assert validate_chrome_trace({"traceEvents": []}) != []

    def test_flags_missing_keys(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "ts": 0}]}
        )
        assert any("missing 'name'" in p for p in problems)

    def test_flags_bad_phase_and_negative_dur(self):
        events = [
            {"name": "a", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1},
            {"name": "c", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 0},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("unsupported phase" in p for p in problems)
        assert any("negative 'dur'" in p for p in problems)
        assert any("negative 'ts'" in p for p in problems)

    def test_flags_x_event_without_dur(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0},
        ]})
        assert any("missing 'dur'" in p for p in problems)
