"""Mid-end optimization passes (the ``-O3`` emulation, paper §IV-A).

The workloads are compiled with ``-O3`` in the paper; the passes here
reproduce the optimizations that matter for the accelerator model:

* constant folding / algebraic simplification,
* loop-invariant code motion (pure computations),
* accumulator promotion (register-promoting loop-invariant load/store
  pairs — the pass that turns memory recurrences into SSA recurrences),
* dead-code elimination,
* CFG simplification (constant branches, block merging, forwarding).
"""

from ..ir import Module, verify_module
from .constfold import fold_constants, fold_constants_module
from .dce import eliminate_dead_code, eliminate_dead_code_module
from .licm import hoist_invariants, hoist_invariants_module
from .promote import promote_accumulators, promote_accumulators_module
from .simplifycfg import simplify_cfg, simplify_cfg_module


def optimize_module(module: Module, verify: bool = True) -> Module:
    """Run the standard pass pipeline in place and return the module."""
    fold_constants_module(module)
    hoist_invariants_module(module)
    promote_accumulators_module(module)
    eliminate_dead_code_module(module)
    simplify_cfg_module(module)
    if verify:
        verify_module(module)
    return module


__all__ = [
    "fold_constants", "fold_constants_module",
    "eliminate_dead_code", "eliminate_dead_code_module",
    "hoist_invariants", "hoist_invariants_module",
    "promote_accumulators", "promote_accumulators_module",
    "simplify_cfg", "simplify_cfg_module",
    "optimize_module",
]
