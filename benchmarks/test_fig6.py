"""Regenerates the paper's Fig. 6 (experiment id: fig6): speedup-vs-area
Pareto fronts of NOVIA, QsCores, coupled-only Cayman, and full Cayman on
benchmarks from four different suites.

Shape claims checked (paper §IV-B):

* Cayman solutions dominate all baselines on every benchmark;
* NOVIA solutions sit in the lower-left corner (low speedup, low area);
* coupled-only Cayman trails full Cayman — except on loops-all, where FP
  loop-carried dependencies bound the achievable II and the interface
  specialization cannot help much.
"""

import pytest

from repro.reporting import (
    DEFAULT_FIG6_BENCHMARKS,
    build_series,
    dominance_check,
    generate_figure6,
    render_figure6,
)

_series_cache = {}


def _series(runner):
    if "series" not in _series_cache:
        _series_cache["series"] = generate_figure6(
            DEFAULT_FIG6_BENCHMARKS, runner=runner
        )
    return _series_cache["series"]


def test_fig6_pareto_fronts(benchmark, comparison_runner):
    series = benchmark.pedantic(
        _series, args=(comparison_runner,), rounds=1, iterations=1
    )
    print()
    print(render_figure6(series))
    assert {s.benchmark for s in series} == set(DEFAULT_FIG6_BENCHMARKS)
    for item in series:
        checks = dominance_check(item)
        for name, ok in checks.items():
            assert ok, f"{item.benchmark}: {name}"


def test_fig6_novia_lower_left(benchmark, comparison_runner):
    series = benchmark.pedantic(
        _series, args=(comparison_runner,), rounds=1, iterations=1
    )
    for item in series:
        if not item.novia or not item.cayman:
            continue
        best_novia = max(s for _, s in item.novia)
        best_cayman = max(s for _, s in item.cayman)
        assert best_novia <= best_cayman
        max_area_novia = max(a for a, _ in item.novia)
        max_area_cayman = max(a for a, _ in item.cayman)
        assert max_area_novia <= max_area_cayman


def test_fig6_coupled_only_gap(benchmark, comparison_runner):
    """coupled-only trails full Cayman for stream benchmarks; the gap is
    smallest for loops-all (RecMII-bound)."""

    def gaps():
        result = {}
        for item in _series(comparison_runner):
            best_full = max((s for _, s in item.cayman), default=1.0)
            best_coupled = max((s for _, s in item.coupled_only), default=1.0)
            result[item.benchmark] = best_full / best_coupled
        return result

    ratio = benchmark.pedantic(gaps, rounds=1, iterations=1)
    print()
    for name, value in sorted(ratio.items()):
        print(f"full/coupled-only speedup ratio {name}: {value:.2f}x")
    for name, value in ratio.items():
        assert value >= 0.99, name
    others = [v for k, v in ratio.items() if k != "loops-all-mid-10k-sp"]
    assert ratio["loops-all-mid-10k-sp"] <= max(others)
