"""QsCores-style off-core accelerator synthesis baseline [23].

QsCores (quasi-specific cores) automatically extracts hot program regions
into off-core accelerators, but — as characterized in the paper's Table I —

* synthesizes only **sequential** control logic (no loop pipelining or
  unrolling), and
* moves data through a **scan-chain interface** with high latency and low
  bandwidth ([22], [23]),
* shares hardware only among **almost identical** regions.

The baseline reuses Cayman's wPST + DP selection machinery with a model
restricted accordingly, which is generous to QsCores (its published
selection is greedier) and therefore a conservative comparison.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from ..analysis.wpst import WPST
from ..frontend.lowering import compile_source
from ..hls.techlib import CVA6_TILE_AREA_UM2, DEFAULT_TECHLIB, TechLibrary
from ..interp.profiler import profile_module
from ..ir import Module
from ..merging.merge_driver import AcceleratorMerger, MergedSolution
from ..model.estimator import AcceleratorModel
from ..selection.knapsack import CandidateSelector
from ..selection.pruning import PruneHeuristic
from .common import BaselineResult


class QsCoresModel(AcceleratorModel):
    """Accelerator model restricted to QsCores' capabilities."""

    INTERFACE_MODES = ("scanchain",)

    def __init__(self, module, profile, techlib=DEFAULT_TECHLIB, **kwargs):
        kwargs.setdefault("unroll_factors", (1,))
        kwargs.setdefault("pipeline_innermost", False)
        super().__init__(module, profile, techlib=techlib, **kwargs)


class QsCores:
    """End-to-end QsCores baseline flow."""

    #: Only regions whose datapaths are ≥90% identical may share hardware.
    MIN_MATCH_FRACTION = 0.9

    def __init__(
        self,
        techlib: TechLibrary = DEFAULT_TECHLIB,
        alpha: float = 1.1,
        prune_threshold: float = 0.001,
        area_cap_ratio: float = 2.0,
    ):
        self.techlib = techlib
        self.alpha = alpha
        self.prune_threshold = prune_threshold
        self.area_cap_ratio = area_cap_ratio

    def run(
        self,
        program: Union[str, Module],
        entry: str = "main",
        args: Optional[List] = None,
        setup: Optional[Callable] = None,
        name: str = "app",
    ) -> BaselineResult:
        module = (
            compile_source(program, name) if isinstance(program, str) else program
        )
        profile = profile_module(module, entry=entry, args=args, setup=setup)
        wpst = WPST(module, entry_function=entry)
        model = QsCoresModel(module, profile, techlib=self.techlib)
        selector = CandidateSelector(
            wpst,
            model,
            prune=PruneHeuristic(profile, self.prune_threshold),
            alpha=self.alpha,
            area_cap=self.area_cap_ratio * CVA6_TILE_AREA_UM2,
        )
        front = selector.run()
        merger = AcceleratorMerger(
            self.techlib, min_match_fraction=self.MIN_MATCH_FRACTION
        )
        merged: List[MergedSolution] = [
            merger.merge(solution) for solution in front if not solution.is_empty
        ]
        return BaselineResult(name="qscores", profile=profile, merged=merged)
