"""Tests for the ``spad_banking`` bench section: equal-area before/after
II semantics, determinism, and the compare_reports wiring."""

import copy
import json

import pytest

from repro.reporting.bench import (
    EvaluationEngine,
    FlowParams,
    build_report,
    compare_reports,
    spad_banking_stats,
)

NAMES = ["stride2-collider", "bank-transpose", "trisolv"]


@pytest.fixture(scope="module")
def section():
    return spad_banking_stats(NAMES)


def report_with(section=None):
    return build_report(
        [], engine=EvaluationEngine(FlowParams()), tag="t",
        wall_seconds=0.0, spad_banking=section,
    )


class TestSemantics:
    def test_collider_serializes_and_regresses(self, section):
        entry = section["stride2-collider"]
        assert entry["serialized_groups"] >= 1
        assert entry["regressed_loops"] >= 1
        assert entry["ii_after_total"] > entry["ii_before_total"]
        gather = [l for l in entry["loops"] if l["loop"] == "gather"]
        assert gather
        worst = max(gather, key=lambda l: l["factor"])
        assert worst["ii_after"] > worst["ii_before"]
        serialized = [g for g in worst["groups"] if g["base"] == "A"]
        assert serialized[0]["scheme"] == "serialized"
        assert serialized[0]["banks_proven"] == 1
        assert serialized[0]["banks_claimed"] == worst["factor"]

    def test_proven_workloads_unchanged_at_equal_area(self, section):
        for name in ("bank-transpose", "trisolv"):
            entry = section[name]
            assert entry["groups"] > 0
            assert entry["serialized_groups"] == 0
            assert entry["regressed_loops"] == 0
            assert entry["ii_after_total"] == entry["ii_before_total"]

    def test_block_scheme_survives_where_cyclic_cannot(self, section):
        rows = [l for l in section["bank-transpose"]["loops"]
                if l["loop"] == "rows_l"]
        assert rows
        schemes = {g["scheme"] for l in rows for g in l["groups"]
                   if g["base"] == "T"}
        assert "block-4" in schemes

    def test_counts_are_exact_ints(self, section):
        for entry in section.values():
            for key in ("probed_loops", "groups", "proven_groups",
                        "serialized_groups", "regressed_loops",
                        "ii_before_total", "ii_after_total"):
                assert isinstance(entry[key], int)
            for loop in entry["loops"]:
                assert isinstance(loop["ii_before"], int)
                assert isinstance(loop["ii_after"], int)
                assert loop["ii_after"] >= loop["ii_before"]


class TestDeterminism:
    def test_two_runs_identical(self, section):
        again = spad_banking_stats(NAMES)
        assert json.loads(json.dumps(section)) == json.loads(
            json.dumps(again)
        )

    def test_json_round_trips(self, section):
        assert json.loads(json.dumps(section)) == section


class TestReportWiring:
    def test_build_report_carries_section(self, section):
        assert report_with(section)["spad_banking"] == section

    def test_build_report_omits_when_disabled(self):
        assert "spad_banking" not in report_with(None)

    def test_compare_reports_flags_drift(self, section):
        left = report_with(section)
        right = copy.deepcopy(left)
        assert compare_reports(left, right) == []
        right["spad_banking"]["stride2-collider"]["ii_after_total"] += 1
        problems = compare_reports(left, right)
        assert any("spad_banking/stride2-collider" in p for p in problems)

    def test_compare_reports_flags_missing_workload(self, section):
        left = report_with(section)
        right = copy.deepcopy(left)
        del right["spad_banking"]["trisolv"]
        problems = compare_reports(left, right)
        assert any("spad_banking/trisolv" in p for p in problems)
