"""Tests for the parallel, persistently-cached evaluation engine."""

import json
import os

import pytest

from repro.reporting import build_row, build_series
from repro.reporting.bench import (
    BenchCache,
    EvaluationEngine,
    FlowParams,
    WorkloadRecord,
    build_report,
    cache_key,
    compare_reports,
    default_tag,
    load_report,
    module_ir_hash,
    write_report,
)
from repro.reporting.figure6 import series_from_record
from repro.reporting.table2 import row_from_record

NAMES = ["trisolv", "bicg"]


@pytest.fixture(scope="module")
def params():
    return FlowParams()


@pytest.fixture(scope="module")
def serial_records(params):
    engine = EvaluationEngine(params)
    return engine.evaluate(NAMES, jobs=1)


class TestCacheKey:
    def test_ir_hash_stable_within_process(self):
        # Regression: raw prints embed a process-global value-name counter,
        # so an un-canonicalized hash changed on every recompute.
        assert module_ir_hash("trisolv") == module_ir_hash("trisolv")

    def test_key_depends_on_params(self, params):
        ir = module_ir_hash("trisolv")
        base = cache_key("trisolv", params, ir_hash=ir)
        assert base == cache_key("trisolv", params, ir_hash=ir)
        assert base != cache_key(
            "trisolv", FlowParams(alpha=1.2), ir_hash=ir
        )
        assert base != cache_key(
            "trisolv", FlowParams(budgets=(0.25,)), ir_hash=ir
        )
        assert base != cache_key("trisolv", params, ir_hash="0" * 64)
        assert base != cache_key("bicg", params, ir_hash=ir)


class TestRecords:
    def test_roundtrip(self, serial_records):
        for record in serial_records:
            clone = WorkloadRecord.from_dict(
                json.loads(json.dumps(record.to_dict()))
            )
            assert clone.to_dict() == record.to_dict()

    def test_speedups_present_for_all_flows_and_budgets(
        self, serial_records, params
    ):
        for record in serial_records:
            for flow in ("cayman", "coupled_only", "novia", "qscores"):
                for budget in params.budgets:
                    assert record.speedup(flow, budget) >= 1.0

    def test_stage_and_selector_instrumentation(self, serial_records):
        for record in serial_records:
            for stage in ("compile", "profile", "analysis", "selection",
                          "merging", "flow_cayman", "flow_novia"):
                assert record.stage_seconds[stage] >= 0.0
            assert record.selector_stats["cayman"]["evaluated_vertices"] > 0

    def test_table2_row_matches_full_object_path(self, serial_records):
        engine = EvaluationEngine(FlowParams())
        for record in serial_records:
            comparison = engine.comparison(record.name)
            expected = build_row(comparison)
            actual = row_from_record(record)
            assert actual.small == expected.small
            assert actual.large == expected.large
            assert actual.suite == expected.suite

    def test_fig6_series_matches_full_object_path(self, serial_records):
        engine = EvaluationEngine(FlowParams())
        for record in serial_records:
            expected = build_series(engine.comparison(record.name))
            actual = series_from_record(record)
            assert actual.as_dict() == expected.as_dict()


class TestPersistentCache:
    def test_cold_then_warm(self, tmp_path, params, serial_records):
        cache_dir = str(tmp_path / "cache")
        cold = EvaluationEngine(params, cache=BenchCache(cache_dir))
        cold_records = cold.evaluate(NAMES)
        assert cold.misses == len(NAMES) and cold.hits == 0

        warm = EvaluationEngine(params, cache=BenchCache(cache_dir))
        warm_records = warm.evaluate(NAMES)
        assert warm.hits == len(NAMES) and warm.misses == 0
        # The warm engine never ran a flow.
        assert warm._comparisons == {}
        for a, b in zip(cold_records, warm_records):
            assert a.to_dict() == b.to_dict()
        # Warm results equal the plain serial (uncached) evaluation too.
        for a, b in zip(serial_records, warm_records):
            assert a.flows == b.flows and a.table2 == b.table2

    def test_comparison_path_populates_cache(self, tmp_path, params):
        cache_dir = str(tmp_path / "cache")
        engine = EvaluationEngine(params, cache=BenchCache(cache_dir))
        engine.comparison("trisolv")
        warm = EvaluationEngine(params, cache=BenchCache(cache_dir))
        assert warm.cached_record("trisolv") is not None

    def test_corrupt_entry_is_a_miss(self, tmp_path, params):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        engine = EvaluationEngine(params, cache=BenchCache(str(cache_dir)))
        key = engine.key_for("trisolv")
        (cache_dir / f"{key}.json").write_text("{ not json")
        assert engine.cached_record("trisolv") is None

    def test_estimator_version_mismatch_is_a_miss(self, tmp_path, params):
        cache_dir = str(tmp_path / "cache")
        engine = EvaluationEngine(params, cache=BenchCache(cache_dir))
        record = engine.record("trisolv")
        stale = dict(record.to_dict(), estimator_version="0-stale")
        path = os.path.join(cache_dir, f"{record.key}.json")
        with open(path, "w") as handle:
            json.dump(stale, handle)
        fresh = EvaluationEngine(params, cache=BenchCache(cache_dir))
        assert fresh.cached_record("trisolv") is None


class TestParallelDeterminism:
    def test_parallel_results_identical_to_serial(
        self, params, serial_records
    ):
        parallel_engine = EvaluationEngine(params)
        parallel_records = parallel_engine.evaluate(NAMES, jobs=2)
        serial_payload = build_report(
            serial_records, EvaluationEngine(params), "serial", 0.0
        )
        parallel_payload = build_report(
            parallel_records, parallel_engine, "parallel", 0.0
        )
        assert compare_reports(serial_payload, parallel_payload) == []
        # Bit-for-bit on the deterministic sections, including after a JSON
        # roundtrip (what the CI smoke job compares).
        roundtrip = json.loads(json.dumps(parallel_payload))
        assert compare_reports(serial_payload, roundtrip) == []
        for a, b in zip(serial_records, parallel_records):
            assert a.key == b.key
            assert a.flows == b.flows
            assert a.table2 == b.table2
            assert a.selector_stats == b.selector_stats


class TestReports:
    def test_write_load_compare(self, tmp_path, params, serial_records):
        engine = EvaluationEngine(params)
        payload = build_report(serial_records, engine, "t", 1.0)
        path = write_report(payload, directory=str(tmp_path))
        assert os.path.basename(path) == "BENCH_t.json"
        loaded = load_report(path)
        assert loaded["schema_version"] == payload["schema_version"]
        assert compare_reports(payload, loaded) == []

    def test_compare_detects_tampering(self, params, serial_records):
        engine = EvaluationEngine(params)
        payload = build_report(serial_records, engine, "t", 1.0)
        tampered = json.loads(json.dumps(payload))
        name = NAMES[0]
        flows = tampered["workloads"][name]["flows"]
        flows["cayman"]["speedups"]["0.65"] += 0.001
        problems = compare_reports(payload, tampered)
        assert problems and name in problems[0]

    def test_compare_detects_missing_workload(self, params, serial_records):
        engine = EvaluationEngine(params)
        payload = build_report(serial_records, engine, "t", 1.0)
        shrunk = json.loads(json.dumps(payload))
        del shrunk["workloads"][NAMES[0]]
        assert compare_reports(payload, shrunk)

    def test_default_tag_stable(self, params):
        assert default_tag(params) == default_tag(FlowParams())
        assert default_tag(params) != default_tag(FlowParams(alpha=1.3))


class TestBenchCacheStats:
    def test_zero_total_guard(self, tmp_path):
        cache = BenchCache(str(tmp_path / "cache"))
        assert cache.hit_rate() == 0.0
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["hit_rate"] == 0.0

    def test_get_counts_hits_and_misses(self, tmp_path, params):
        cache_dir = str(tmp_path / "cache")
        engine = EvaluationEngine(params, cache=BenchCache(cache_dir))
        record = engine.record("trisolv")
        warm = BenchCache(cache_dir)
        assert warm.get(record.key) is not None
        assert warm.get("0" * 64) is None
        assert warm.hits == 1 and warm.misses == 1
        assert warm.hit_rate() == 0.5
        assert warm.stats()["directory"] == cache_dir

    def test_engine_cache_stats_include_disk(self, tmp_path, params):
        engine = EvaluationEngine(params, cache=BenchCache(str(tmp_path)))
        stats = engine.cache_stats()
        assert stats["hit_rate"] == 0.0
        assert stats["disk"] == engine.cache.stats()
        assert "disk" not in EvaluationEngine(params).cache_stats()


class TestTelemetrySection:
    def test_serial_and_parallel_counters_bit_identical(self, params):
        serial = EvaluationEngine(params)
        serial.evaluate(NAMES, jobs=1)
        parallel = EvaluationEngine(params)
        parallel.evaluate(NAMES, jobs=2)
        s = serial.telemetry_section(NAMES)
        p = parallel.telemetry_section(NAMES)
        # Counters (including float-valued ones) must agree bit-for-bit;
        # timings are wall-clock and deliberately not compared.
        assert s["merged"]["counters"] == p["merged"]["counters"]
        for name in NAMES:
            assert (s["workloads"][name]["counters"]
                    == p["workloads"][name]["counters"])
        merged = s["merged"]["counters"]
        assert merged["interp.instructions"] > 0
        assert merged["selection.vertices_evaluated"] > 0

    def test_report_contains_merged_telemetry(self, params):
        engine = EvaluationEngine(params)
        records = engine.evaluate(NAMES[:1])
        payload = build_report(records, engine, "t", 1.0)
        section = payload["telemetry"]
        assert NAMES[0] in section["workloads"]
        assert section["merged"]["counters"]["model.candidates"] > 0
        assert "cache" in section

    def test_cache_hits_contribute_no_snapshot(self, tmp_path, params):
        cache_dir = str(tmp_path / "cache")
        cold = EvaluationEngine(params, cache=BenchCache(cache_dir))
        cold.evaluate(NAMES[:1])
        warm = EvaluationEngine(params, cache=BenchCache(cache_dir))
        warm.evaluate(NAMES[:1])
        assert warm.telemetry_snapshots == {}
        section = warm.telemetry_section(NAMES[:1])
        assert section["workloads"] == {}
        assert section["merged"]["counters"] == {}

    def test_compare_reports_ignores_telemetry(self, params, serial_records):
        engine = EvaluationEngine(params)
        payload = build_report(serial_records, engine, "t", 1.0)
        other = json.loads(json.dumps(payload))
        other["telemetry"] = {"workloads": {}, "merged": {
            "counters": {}, "timings": {}}, "cache": {}}
        assert compare_reports(payload, other) == []
