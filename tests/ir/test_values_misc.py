"""Tests for value helpers: constants, folding, naming, globals, undef."""

import pytest

from repro.ir import (
    Constant,
    F32,
    F64,
    GlobalVariable,
    I32,
    I8,
    PointerType,
    UndefValue,
)
from repro.ir.printer import instruction_signature
from repro.ir.values import constant_fold_binary, ensure_distinct_names


class TestConstants:
    def test_value_equality(self):
        assert Constant(I32, 5) == Constant(I32, 5)
        assert Constant(I32, 5) != Constant(I32, 6)
        assert Constant(I32, 5) != Constant(F32, 5)
        assert hash(Constant(I32, 5)) == hash(Constant(I32, 5))

    def test_coercion_at_construction(self):
        assert Constant(I32, 3.9).value == 3
        assert Constant(F64, 3).value == 3.0
        assert isinstance(Constant(F64, 3).value, float)

    def test_ref_is_literal(self):
        assert Constant(I32, -7).ref == "-7"
        assert Constant(F32, 1.5).ref == "1.5"

    def test_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            Constant(PointerType(I32), 0)


class TestConstantFolding:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 3, 4, 7),
        ("sub", 3, 4, -1),
        ("mul", -3, 4, -12),
        ("div", 7, 2, 3),
        ("div", -7, 2, -3),     # C truncation toward zero
        ("rem", -7, 2, -1),
        ("and", 12, 10, 8),
        ("or", 12, 10, 14),
        ("xor", 12, 10, 6),
        ("shl", 3, 2, 12),
        ("shr", 12, 2, 3),
    ])
    def test_int_folds(self, op, a, b, expected):
        result = constant_fold_binary(op, Constant(I32, a), Constant(I32, b))
        assert result is not None
        assert result.value == expected

    def test_division_by_zero_refused(self):
        assert constant_fold_binary("div", Constant(I32, 1), Constant(I32, 0)) is None
        assert constant_fold_binary("rem", Constant(I32, 1), Constant(I32, 0)) is None

    def test_float_folds(self):
        result = constant_fold_binary("div", Constant(F64, 7.0), Constant(F64, 2.0))
        assert result.value == 3.5

    def test_unknown_op(self):
        assert constant_fold_binary("pow", Constant(I32, 2), Constant(I32, 3)) is None


class TestNaming:
    def test_ensure_distinct_names(self):
        values = [Constant(I32, 0) for _ in range(3)]
        for value in values:
            value.name = "x"
        ensure_distinct_names(values)
        assert len({v.name for v in values}) == 3

    def test_global_ref_uses_at(self):
        var = GlobalVariable(I32, "counter")
        assert var.ref == "@counter"
        assert var.type == PointerType(I32)

    def test_undef_ref(self):
        assert UndefValue(I32).ref == "undef"


class TestInstructionSignature:
    def test_signatures(self):
        from repro.ir import BinaryOp, ICmp

        add = BinaryOp("add", Constant(I32, 1), Constant(I32, 2))
        assert instruction_signature(add) == "add(2)"
        cmp = ICmp("slt", Constant(I32, 1), Constant(I32, 2))
        assert instruction_signature(cmp) == "icmp.slt(2)"
