"""Memory-access pattern analysis (paper §III-B).

For every load/store the analysis resolves

* the **base object** (global array, pointer argument, or alloca),
* the **byte-offset SCEV** relative to that base,
* whether the access has the ***stream*** pattern — its address sequence is
  statically computable (affine in the enclosing loops' induction variables),
* the **access footprint** relative to any enclosing loop: the number of
  distinct elements touched while that loop runs (paper Fig. 2d: ``ld A``
  has footprint M in the dot-product loop, ``ld z`` has footprint 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..ir import (
    Alloca,
    Argument,
    ArrayType,
    Function,
    GetElementPtr,
    GlobalVariable,
    Instruction,
    Load,
    Store,
    Value,
    sizeof,
)
from .loops import Loop, LoopInfo
from .scalar_evolution import (
    CNC,
    SCEV,
    SCEVAddRec,
    SCEVConstant,
    ScalarEvolution,
    scev_add,
    scev_mul_const,
)

BaseObject = Union[GlobalVariable, Argument, Alloca]


class AccessInfo:
    """Resolved addressing information for one load or store."""

    def __init__(
        self,
        inst: Instruction,
        base: Optional[BaseObject],
        offset: SCEV,
        element_size: int,
        loop_info: Optional[LoopInfo] = None,
    ):
        self.inst = inst
        self.base = base
        self.offset = offset
        self.element_size = element_size
        self.loop_info = loop_info

    @property
    def is_load(self) -> bool:
        return isinstance(self.inst, Load)

    @property
    def is_store(self) -> bool:
        return isinstance(self.inst, Store)

    @property
    def is_stream(self) -> bool:
        """True when the address sequence is statically computable: a nest
        of affine recurrences whose steps and residual symbolic part are
        invariant in every loop enclosing the access (an AGU can latch them
        once per kernel invocation).  Steps may be symbolic — ``{0,+,n}`` for
        a linearized ``A[i*n + j]`` is still a stream."""
        if self.base is None:
            return False
        levels = self.affine_addrec_levels()
        if levels is None:
            return False
        residual = self.offset
        while isinstance(residual, SCEVAddRec):
            residual = residual.base
        if self.loop_info is not None and self.inst.parent is not None:
            loop = self.loop_info.innermost_loop(self.inst.parent)
            while loop is not None:
                if not residual.is_invariant_in(loop):
                    return False
                if any(
                    not step.is_invariant_in(loop) for _, step in levels
                ):
                    return False
                loop = loop.parent
        return True

    def stride_in(self, loop: Loop) -> Optional[int]:
        """Per-iteration byte stride of the address w.r.t. ``loop``.

        0 for loop-invariant addresses, None when the address is not affine
        in this loop (e.g. it varies through an inner loop with no step at
        this level, or through a non-affine index).
        """
        scev = self.offset
        while isinstance(scev, SCEVAddRec):
            if scev.loop is loop:
                return scev.constant_step
            scev = scev.base
        if self.offset.is_invariant_in(loop):
            return 0
        return None

    def addrec_levels(self) -> Optional[List]:
        """The addrec nest as ``[(loop, byte_step), ...]`` outermost-first,
        or None when the offset is not an affine recurrence nest."""
        levels = []
        scev = self.offset
        while isinstance(scev, SCEVAddRec):
            step = scev.constant_step
            if step is None:
                return None
            levels.append((scev.loop, step))
            scev = scev.base
        if not scev.is_affine:
            return None
        levels.reverse()  # peeling yields innermost-first; report outermost-first
        return levels

    def affine_addrec_levels(self) -> Optional[List]:
        """The addrec nest as ``[(loop, step_scev)] `` outermost-first,
        allowing loop-invariant *symbolic* steps, or None when the offset is
        not an affine recurrence nest.  The byte-stride of a level is
        ``step_scev``'s value — constant, or resolvable through an interval
        analysis (see :mod:`repro.analysis.dependence`)."""
        levels = []
        scev = self.offset
        while isinstance(scev, SCEVAddRec):
            if not scev.step.is_affine:
                return None
            levels.append((scev.loop, scev.step))
            scev = scev.base
        if not scev.is_affine:
            return None
        levels.reverse()
        return levels

    def footprint_in(self, loop: Loop, trip_count: int) -> Optional[int]:
        """Distinct elements touched while ``loop`` executes ``trip_count``
        iterations (inner-loop repetitions of the same access not counted)."""
        stride = self.stride_in(loop)
        if stride is None:
            return None
        if stride == 0:
            return 1
        span = abs(stride) * (trip_count - 1) + self.element_size
        return max(1, -(-span // self.element_size)) if trip_count > 0 else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ld" if self.is_load else "st"
        base = self.base.name if self.base is not None else "?"
        return f"<{kind} {base} + {self.offset}>"


def _walk_type_sizes(pointee) -> List[int]:
    """Byte scale of each GEP index level for a pointee type."""
    scales = [sizeof(pointee)]
    ty = pointee
    while isinstance(ty, ArrayType):
        ty = ty.element
        scales.append(sizeof(ty))
    return scales


class AccessPatternAnalysis:
    """Per-function resolution of all memory accesses."""

    def __init__(self, func: Function, loop_info: Optional[LoopInfo] = None):
        self.func = func
        self.loop_info = loop_info or LoopInfo(func)
        self.scev = ScalarEvolution(self.loop_info)
        self._info: Dict[Instruction, AccessInfo] = {}
        for inst in func.instructions():
            if isinstance(inst, (Load, Store)):
                self._info[inst] = self._resolve(inst)

    def info(self, inst: Instruction) -> AccessInfo:
        return self._info[inst]

    def accesses(self) -> List[AccessInfo]:
        return list(self._info.values())

    def accesses_in(self, blocks) -> List[AccessInfo]:
        block_set = set(blocks)
        return [a for a in self._info.values() if a.inst.parent in block_set]

    # Resolution ------------------------------------------------------------------

    def _resolve(self, inst: Instruction) -> AccessInfo:
        pointer = inst.pointer  # type: ignore[attr-defined]
        element_size = sizeof(pointer.type.pointee)
        base, offset = self._resolve_pointer(pointer)
        return AccessInfo(inst, base, offset, element_size, self.loop_info)

    def _resolve_pointer(self, pointer: Value):
        """Peel GEPs down to a base object, accumulating the byte offset."""
        offset: SCEV = SCEVConstant(0)
        current = pointer
        while True:
            if isinstance(current, GetElementPtr):
                scales = _walk_type_sizes(current.base.type.pointee)
                for level, index in enumerate(current.indices):
                    index_scev = self.scev.scev_of(index)
                    scaled = scev_mul_const(index_scev, scales[min(level, len(scales) - 1)])
                    offset = scev_add(offset, scaled)
                current = current.base
                continue
            if isinstance(current, (GlobalVariable, Alloca)):
                return current, offset
            if isinstance(current, Argument) and current.type.is_pointer:
                return current, offset
            # Loaded pointers / phis of pointers: unknown base.
            return None, CNC
