"""Tests for the profiler's setup/args hooks (the 'input file' mechanism)."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, profile_module


SOURCE = """
float data[16]; float out[1];
float reduce(int n) {
  float s = 0.0f;
  acc: for (int i = 0; i < n; i++) s += data[i];
  out[0] = s;
  return s;
}
"""


class TestSetupHook:
    def test_setup_initializes_inputs(self):
        module = compile_source(SOURCE)

        def setup(interp):
            interp.memory.write_array_f(
                interp.address_of_global("data"), [float(i) for i in range(16)]
            )

        profile = profile_module(module, entry="reduce", args=[16], setup=setup)
        assert profile.total_cycles > 0
        # Re-run plainly to read the result back.
        interp = Interpreter(module)
        setup(interp)
        result = interp.run("reduce", [16])
        assert result == sum(range(16))

    def test_entry_args_control_trip_count(self):
        module = compile_source(SOURCE)
        from repro.analysis import LoopInfo

        short = profile_module(module, entry="reduce", args=[4])
        full = profile_module(module, entry="reduce", args=[16])
        info = LoopInfo(module.get_function("reduce"))
        loop = info.loops[0]
        assert short.trip_count(loop) == 4
        assert full.trip_count(loop) == 16

    def test_float_args(self):
        module = compile_source(
            "float f(float x, float y) { return x * y + 1.0f; }"
        )
        interp = Interpreter(module)
        assert interp.run("f", [2.0, 3.0]) == 7.0

    def test_wrong_arity_rejected(self):
        module = compile_source(SOURCE)
        from repro.interp import InterpreterError

        with pytest.raises(InterpreterError):
            Interpreter(module).run("reduce", [1, 2, 3])

    def test_custom_memory_size(self):
        module = compile_source(SOURCE)
        interp = Interpreter(module, memory_size=1 << 12)
        assert interp.memory.size == 1 << 12
        interp.run("reduce", [16])
