"""Tests for the DOT exporters."""

from repro.analysis import WPST, cfg_to_dot, dfg_to_dot, wpst_to_dot
from repro.frontend import compile_source
from repro.hls import DFG


SOURCE = """
float a[8]; float b[8];
void f(int n) { loop: for (int i = 0; i < n; i++) b[i] = a[i] * 2.0f; }
int main() { f(8); return 0; }
"""


def test_cfg_to_dot():
    module = compile_source(SOURCE, optimize=False)
    func = module.get_function("f")
    text = cfg_to_dot(func)
    assert text.startswith('digraph "f"')
    assert '"loop.header" -> "loop.body"' in text
    assert text.count("->") == len(
        [s for b in func.blocks for s in b.successors]
    )


def test_cfg_to_dot_with_instructions():
    module = compile_source(SOURCE, optimize=False)
    text = cfg_to_dot(module.get_function("f"), include_instructions=True)
    assert "fmul" in text


def test_wpst_to_dot():
    module = compile_source(SOURCE)
    text = wpst_to_dot(WPST(module))
    assert "doubleoctagon" in text      # root
    assert "octagon" in text            # functions
    assert "region:loop" in text


def test_dfg_to_dot():
    module = compile_source(SOURCE, optimize=False)
    func = module.get_function("f")
    dfg = DFG.from_blocks([func.block_by_name("loop.body")])
    text = dfg_to_dot(dfg, "body")
    assert "fmul" in text and "->" in text
    assert text.count("[label=") == len(dfg.nodes)
