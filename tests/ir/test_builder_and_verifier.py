"""Tests for the IR builder, module structure, printer, and verifier."""

import pytest

from repro.ir import (
    BOOL,
    Constant,
    F32,
    I32,
    IRBuilder,
    Module,
    Phi,
    Return,
    Store,
    VOID,
    VerificationError,
    print_function,
    print_module,
    verify_function,
    verify_module,
)


def build_max_function():
    """int max(int a, int b) via a diamond CFG with a phi."""
    module = Module("m")
    func = module.add_function("max", I32, [I32, I32], ["a", "b"])
    entry = func.add_block("entry")
    then = func.add_block("then")
    other = func.add_block("else")
    merge = func.add_block("merge")
    b = IRBuilder(entry)
    a_arg, b_arg = func.arguments
    cond = b.icmp("sgt", a_arg, b_arg)
    b.cond_br(cond, then, other)
    b.position_at_end(then)
    b.br(merge)
    b.position_at_end(other)
    b.br(merge)
    b.position_at_end(merge)
    phi = b.phi(I32, "result")
    phi.add_incoming(a_arg, then)
    phi.add_incoming(b_arg, other)
    b.ret(phi)
    return module, func


class TestBuilder:
    def test_diamond_function_verifies(self):
        module, func = build_max_function()
        verify_module(module)

    def test_builder_requires_block(self):
        b = IRBuilder()
        with pytest.raises(ValueError):
            b.add(b.const_i32(1), b.const_i32(2))

    def test_unique_block_names(self):
        module = Module("m")
        func = module.add_function("f", VOID, [])
        b1 = func.add_block("bb")
        b2 = func.add_block("bb")
        assert b1.name != b2.name

    def test_constants(self):
        assert IRBuilder.const_bool(True).value == 1
        assert IRBuilder.const_i64(5).type.bits == 64
        assert IRBuilder.const_f64(2.5).value == 2.5


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function("f", VOID, [])
        with pytest.raises(ValueError):
            module.add_function("f", VOID, [])

    def test_duplicate_global_rejected(self):
        module = Module("m")
        module.add_global("g", I32)
        with pytest.raises(ValueError):
            module.add_global("g", I32)

    def test_lookup_errors(self):
        module = Module("m")
        with pytest.raises(KeyError):
            module.get_function("missing")
        with pytest.raises(KeyError):
            module.get_global("missing")


class TestPrinter:
    def test_print_function_contains_blocks(self):
        module, func = build_max_function()
        text = print_function(func)
        assert "func i32 @max" in text
        assert "phi i32" in text
        assert "condbr" in text

    def test_print_module(self):
        module, _ = build_max_function()
        module.add_global("tbl", I32)
        text = print_module(module)
        assert "@tbl = global i32" in text

    def test_printed_names_unique(self):
        module, func = build_max_function()
        text = print_function(func)
        defined = [
            line.split(" = ")[0].strip()
            for line in text.splitlines()
            if " = " in line
        ]
        assert len(defined) == len(set(defined))


class TestVerifier:
    def test_missing_terminator(self):
        module = Module("m")
        func = module.add_function("f", I32, [])
        entry = func.add_block("entry")
        b = IRBuilder(entry)
        b.add(b.const_i32(1), b.const_i32(2))  # no terminator follows
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(func)

    def test_empty_block_rejected(self):
        module = Module("m")
        func = module.add_function("f", VOID, [])
        func.add_block("entry")  # no instructions at all
        with pytest.raises(VerificationError, match="block is empty"):
            verify_function(func)

    def test_use_before_def_same_block(self):
        module = Module("m")
        func = module.add_function("f", I32, [])
        entry = func.add_block("entry")
        b = IRBuilder(entry)
        x = b.add(b.const_i32(1), b.const_i32(2))
        y = b.mul(x, b.const_i32(3))
        b.ret(y)
        # Swap definition order to break dominance.
        entry.instructions[0], entry.instructions[1] = (
            entry.instructions[1], entry.instructions[0],
        )
        with pytest.raises(VerificationError, match="before definition"):
            verify_function(func)

    def test_phi_incoming_must_match_predecessors(self):
        module, func = build_max_function()
        merge = func.block_by_name("merge")
        phi = next(merge.phis())
        phi.remove_incoming(func.block_by_name("then"))
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(func)

    def test_cross_block_dominance(self):
        module = Module("m")
        func = module.add_function("f", I32, [I32])
        entry = func.add_block("entry")
        left = func.add_block("left")
        right = func.add_block("right")
        b = IRBuilder(entry)
        cond = b.icmp("sgt", func.arguments[0], b.const_i32(0))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        x = b.add(func.arguments[0], b.const_i32(1))
        b.ret(x)
        b.position_at_end(right)
        # Illegal: uses x defined in 'left', which does not dominate 'right'.
        right.append(Return(x))
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(func)

    def test_valid_loop_verifies(self):
        module = Module("m")
        func = module.add_function("f", I32, [I32])
        entry = func.add_block("entry")
        header = func.add_block("header")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        i_phi = Phi(I32, "i")
        header.insert_front(i_phi)
        cond = b.icmp("slt", i_phi, func.arguments[0])
        b.cond_br(cond, body, exit_)
        b.position_at_end(body)
        nxt = b.add(i_phi, b.const_i32(1))
        b.br(header)
        i_phi.add_incoming(b.const_i32(0), entry)
        i_phi.add_incoming(nxt, body)
        b.position_at_end(exit_)
        b.ret(i_phi)
        verify_function(func)


class TestVerifierCallAndGlobals:
    """Verifier extensions: call argument types and global resolution."""

    def _caller_and_callee(self):
        module = Module("m")
        callee = module.add_function("callee", I32, [I32], ["x"])
        cb = IRBuilder(callee.add_block("entry"))
        cb.ret(callee.arguments[0])
        caller = module.add_function("caller", I32, [])
        b = IRBuilder(caller.add_block("entry"))
        result = b.call(callee, [b.const_i32(7)])
        b.ret(result)
        return module, caller

    def test_valid_call_verifies(self):
        module, _ = self._caller_and_callee()
        verify_module(module)

    def test_call_arg_type_mismatch_rejected(self):
        module, caller = self._caller_and_callee()
        call = caller.entry.instructions[0]
        call.set_operand(0, Constant(F32, 1.0))
        with pytest.raises(VerificationError, match="arg 0 has type f32"):
            verify_module(module)

    def test_call_arity_mismatch_rejected(self):
        module, caller = self._caller_and_callee()
        call = caller.entry.instructions[0]
        extra = Constant(I32, 2)
        call.operands.append(extra)
        extra.add_user(call)
        with pytest.raises(VerificationError, match="passes 2 args"):
            verify_module(module)

    def test_global_must_resolve_to_symbol_table(self):
        from repro.ir import GlobalVariable

        module = Module("m")
        func = module.add_function("f", I32, [])
        b = IRBuilder(func.add_block("entry"))
        rogue = GlobalVariable(I32, "rogue")  # never added to the module
        value = b.load(rogue)
        b.ret(value)
        with pytest.raises(VerificationError, match="symbol table"):
            verify_module(module)

    def test_registered_global_verifies(self):
        module = Module("m")
        g = module.add_global("g", I32)
        func = module.add_function("f", I32, [])
        b = IRBuilder(func.add_block("entry"))
        b.ret(b.load(g))
        verify_module(module)

    def test_shadowed_global_name_rejected(self):
        from repro.ir import GlobalVariable

        module = Module("m")
        module.add_global("g", I32)
        impostor = GlobalVariable(I32, "g")  # same name, different object
        func = module.add_function("f", I32, [])
        b = IRBuilder(func.add_block("entry"))
        b.ret(b.load(impostor))
        with pytest.raises(VerificationError, match="symbol table"):
            verify_module(module)
