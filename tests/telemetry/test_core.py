"""Tests for the telemetry core: spans, metrics, context, snapshots."""

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current,
    install,
    merge_snapshots,
    use,
)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tele = Telemetry()
        with tele.span("outer"):
            with tele.span("inner_a"):
                with tele.span("leaf"):
                    pass
            with tele.span("inner_b"):
                pass
        assert [root.name for root in tele.roots] == ["outer"]
        outer = tele.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.children[0].children[0].name == "leaf"
        assert outer.depth == 0
        assert outer.children[0].depth == 1
        assert outer.children[0].children[0].depth == 2

    def test_seq_is_start_order(self):
        tele = Telemetry()
        with tele.span("a"):
            with tele.span("b"):
                pass
        with tele.span("c"):
            pass
        names = {span.name: span.seq for span in tele.walk_spans()}
        assert names == {"a": 0, "b": 1, "c": 2}

    def test_attrs_and_set(self):
        tele = Telemetry()
        with tele.span("work", workload="fig2") as span:
            span.set("result", 7)
        assert tele.roots[0].attrs == {"workload": "fig2", "result": 7}

    def test_durations_are_monotonic(self):
        tele = Telemetry()
        with tele.span("outer"):
            with tele.span("inner"):
                pass
        outer, inner = tele.roots[0], tele.roots[0].children[0]
        assert outer.duration_s >= inner.duration_s >= 0.0
        assert inner.start_s >= outer.start_s

    def test_active_span(self):
        tele = Telemetry()
        assert tele.active_span is None
        with tele.span("outer") as outer:
            assert tele.active_span is outer
            with tele.span("inner") as inner:
                assert tele.active_span is inner
            assert tele.active_span is outer
        assert tele.active_span is None

    def test_exceptional_unwind_closes_spans(self):
        tele = Telemetry()
        with pytest.raises(RuntimeError):
            with tele.span("outer"):
                with tele.span("inner"):
                    raise RuntimeError("boom")
        assert tele.active_span is None
        for span in tele.walk_spans():
            assert span.end_s is not None

    def test_span_tree_without_timing_is_deterministic(self):
        def build():
            tele = Telemetry()
            with tele.span("a", k=1):
                with tele.span("b"):
                    pass
            return tele.span_tree(include_timing=False)

        assert build() == build()
        tree = build()
        assert "start_s" not in tree[0] and "duration_s" not in tree[0]

    def test_span_tree_with_timing(self):
        tele = Telemetry()
        with tele.span("a"):
            pass
        tree = tele.span_tree(include_timing=True)
        assert tree[0]["duration_s"] >= 0.0

    def test_walk_spans_preorder(self):
        tele = Telemetry()
        with tele.span("a"):
            with tele.span("b"):
                pass
            with tele.span("c"):
                with tele.span("d"):
                    pass
        assert [s.name for s in tele.walk_spans()] == ["a", "b", "c", "d"]


class TestMetrics:
    def test_counters_accumulate(self):
        tele = Telemetry()
        tele.count("x")
        tele.count("x", 4)
        tele.count("y", 2.5)
        snap = tele.snapshot()
        assert snap["counters"] == {"x": 5, "y": 2.5}

    def test_histograms_aggregate(self):
        tele = Telemetry()
        tele.record("t", 2.0)
        tele.record("t", 1.0)
        tele.record("t", 4.0)
        stats = tele.snapshot()["timings"]["t"]
        assert stats == {"count": 3, "total": 7.0, "min": 1.0, "max": 4.0}

    def test_snapshot_keys_sorted(self):
        tele = Telemetry()
        tele.count("zeta")
        tele.count("alpha")
        assert list(tele.snapshot()["counters"]) == ["alpha", "zeta"]

    def test_merge_snapshot_sums_counters(self):
        a, b = Telemetry(), Telemetry()
        a.count("n", 2)
        b.count("n", 3)
        b.count("m", 1)
        b.record("t", 0.5)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"m": 1, "n": 5}
        assert snap["timings"]["t"]["count"] == 1

    def test_merge_snapshots_order_sensitive_but_complete(self):
        snaps = []
        for value in (1, 2, 3):
            tele = Telemetry()
            tele.count("n", value)
            tele.record("t", float(value))
            snaps.append(tele.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["counters"] == {"n": 6}
        assert merged["timings"]["t"] == {
            "count": 3, "total": 6.0, "min": 1.0, "max": 3.0,
        }
        assert merge_snapshots(snaps) == merge_snapshots(snaps)
        assert merge_snapshots([]) == {"counters": {}, "timings": {}}


class TestContext:
    def test_default_is_null(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_use_scopes_and_restores(self):
        tele = Telemetry()
        with use(tele):
            assert current() is tele
            inner = Telemetry()
            with use(inner):
                assert current() is inner
            assert current() is tele
        assert current() is NULL_TELEMETRY

    def test_use_restores_on_exception(self):
        tele = Telemetry()
        with pytest.raises(ValueError):
            with use(tele):
                raise ValueError
        assert current() is NULL_TELEMETRY

    def test_install(self):
        tele = Telemetry()
        install(tele)
        try:
            assert current() is tele
        finally:
            install(NULL_TELEMETRY)
        assert current() is NULL_TELEMETRY


class TestNullTelemetry:
    def test_every_operation_is_a_noop(self):
        null = NullTelemetry()
        with null.span("anything", k=1) as span:
            span.set("key", "value")
            assert span.duration_s == 0.0
        null.count("n", 5)
        null.record("t", 1.0)
        assert null.counter("n").value == 0
        assert null.histogram("t").count == 0
        assert null.snapshot() == {"counters": {}, "timings": {}}
        assert null.span_tree() == []
        assert list(null.walk_spans()) == []
        assert null.active_span is None
        null.merge_snapshot({"counters": {"n": 1}, "timings": {}})
        null.close()

    def test_null_spans_are_shared(self):
        null = NullTelemetry()
        assert null.span("a") is null.span("b")


class TestClose:
    def test_close_flushes_sinks_once(self):
        from repro.telemetry import InMemorySink

        sink = InMemorySink()
        tele = Telemetry(sinks=[sink])
        tele.count("n", 3)
        tele.close()
        tele.close()
        assert sink.snapshot == {
            "counters": {"n": 3}, "timings": {},
        }
