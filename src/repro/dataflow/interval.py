"""Interval (value-range) analysis over the IR (paper §III-B companion).

Per-SSA-value integer ranges computed by forward dataflow with loop-header
widening and branch-condition refinement: after ``condbr (icmp slt %i, %n)``
the true edge knows ``%i < %n`` and tightens both operands.  Widening jumps
straight to the type's representable range, which doubles as ⊤ — the
interpreter wraps to two's complement, so a value of ``iN`` always lies in
``[-2^(N-1), 2^(N-1)-1]`` and every derived fact stays sound.

A module-level driver (:class:`ModuleIntervalAnalysis`) runs functions in
callers-first order and seeds each function's argument ranges with the join
of the actual arguments at every intra-module call site, so constants flow
from ``main(){ kernel(24); }`` into ``kernel``'s loop bounds.  Functions
with no intra-module callers (the external entry) get ⊤ arguments.

Clients: bounds proofs (:mod:`repro.dataflow.bounds`), the lint rules
IR007/IR008/AN004, the accelerator model's footprint clamping, and the
interpreter's sanitizer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (
    Argument,
    BasicBlock,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Constant,
    Function,
    ICmp,
    Instruction,
    Module,
    Phi,
    Select,
    UnaryOp,
    Value,
)
from ..analysis.callgraph import CallGraph
from ..analysis.loops import Loop, LoopInfo
from .framework import ForwardDataflow


class Interval:
    """A closed integer interval ``[lo, hi]``; ``None`` bounds mean ±∞.

    The empty (bottom) interval is represented by the singleton
    :data:`BOTTOM`; every other instance is non-empty.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[int], hi: Optional[int]):
        self.lo = lo
        self.hi = hi

    # Constructors -----------------------------------------------------------

    @staticmethod
    def constant(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def of_type(bits: int) -> "Interval":
        if bits <= 1:
            return Interval(0, 1)
        return Interval(-(1 << (bits - 1)), (1 << (bits - 1)) - 1)

    # Predicates -------------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self is BOTTOM

    @property
    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.is_bottom:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def subset_of(self, other: "Interval") -> bool:
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        return lo_ok and hi_ok

    # Lattice ----------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def intersect(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        lo = self.lo if other.lo is None else (
            other.lo if self.lo is None else max(self.lo, other.lo)
        )
        hi = self.hi if other.hi is None else (
            other.hi if self.hi is None else min(self.hi, other.hi)
        )
        if lo is not None and hi is not None and lo > hi:
            return BOTTOM
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: bounds that moved jump to ∞."""
        if self.is_bottom:
            return newer
        if newer.is_bottom:
            return self
        lo = self.lo
        if newer.lo is None or (lo is not None and newer.lo < lo):
            lo = None
        hi = self.hi
        if newer.hi is None or (hi is not None and newer.hi > hi):
            hi = None
        return Interval(lo, hi)

    # Exact (unwrapped) arithmetic -------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        if self.is_bottom:
            return BOTTOM
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if None in (self.lo, self.hi, other.lo, other.hi):
            # A finite corner analysis with infinities needs sign reasoning;
            # only the all-finite and scale-by-constant cases matter here.
            if other.is_constant:
                return self._mul_const(other.lo)
            if self.is_constant:
                return other._mul_const(self.lo)
            return Interval.top()
        corners = [
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        ]
        return Interval(min(corners), max(corners))

    def _mul_const(self, factor: int) -> "Interval":
        if factor == 0:
            return Interval.constant(0)
        lo = None if self.lo is None else self.lo * factor
        hi = None if self.hi is None else self.hi * factor
        if factor < 0:
            lo, hi = hi, lo
        return Interval(lo, hi)

    def shl(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if other.is_constant and other.lo is not None and 0 <= other.lo < 63:
            return self._mul_const(1 << other.lo)
        return Interval.top()

    def shr(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if (
            other.is_constant and other.lo is not None and 0 <= other.lo < 63
            and self.lo is not None and self.hi is not None
        ):
            return Interval(self.lo >> other.lo, self.hi >> other.lo)
        return Interval.top()

    def span(self) -> Optional[int]:
        """``hi - lo`` when both bounds are finite."""
        if self.is_bottom or self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo

    # Plumbing ---------------------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, Interval)
            and (self is BOTTOM) == (other is BOTTOM)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self):
        return hash((self is BOTTOM, self.lo, self.hi))

    def __repr__(self):
        if self.is_bottom:
            return "⊥"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


BOTTOM = Interval(0, -1)  # canonical empty interval (lo > hi marker)


def _clamp(interval: Interval, bits: int) -> Interval:
    """Wrap-aware clamp: an exact range escaping the representable window
    wraps in two's complement, so the sound result is the full type range
    unless the exact range already fits."""
    rep = Interval.of_type(bits)
    if interval.is_bottom:
        return BOTTOM
    if interval.subset_of(rep):
        return interval
    return rep


_NEGATE = {"eq": "ne", "ne": "eq", "slt": "sge", "sle": "sgt",
           "sgt": "sle", "sge": "slt"}


def _refine_pair(
    pred: str, lhs: Interval, rhs: Interval
) -> Tuple[Interval, Interval]:
    """Refined (lhs, rhs) assuming ``lhs pred rhs`` holds."""
    if pred == "eq":
        meet = lhs.intersect(rhs)
        return meet, meet
    if pred == "ne":
        return lhs, rhs
    if pred in ("slt", "sle"):
        off = 1 if pred == "slt" else 0
        new_lhs = lhs.intersect(
            Interval(None, None if rhs.hi is None else rhs.hi - off)
        )
        new_rhs = rhs.intersect(
            Interval(None if lhs.lo is None else lhs.lo + off, None)
        )
        return new_lhs, new_rhs
    if pred in ("sgt", "sge"):
        off = 1 if pred == "sgt" else 0
        new_lhs = lhs.intersect(
            Interval(None if rhs.lo is None else rhs.lo + off, None)
        )
        new_rhs = rhs.intersect(
            Interval(None, None if lhs.hi is None else lhs.hi - off)
        )
        return new_lhs, new_rhs
    return lhs, rhs


class _Env:
    """Immutable-by-convention mapping Value → Interval with sharing."""

    __slots__ = ("values",)

    def __init__(self, values: Optional[Dict[Value, Interval]] = None):
        self.values = values if values is not None else {}

    def copy(self) -> "_Env":
        return _Env(dict(self.values))

    def __eq__(self, other):
        return isinstance(other, _Env) and self.values == other.values

    def __hash__(self):  # pragma: no cover - not used as dict key
        raise TypeError("unhashable")


class IntervalAnalysis(ForwardDataflow):
    """Per-function interval analysis.

    ``arg_intervals`` optionally seeds argument ranges (from the
    interprocedural driver); unseeded integer arguments get their type's
    full range.
    """

    def __init__(
        self,
        func: Function,
        loop_info: Optional[LoopInfo] = None,
        arg_intervals: Optional[Dict[Argument, Interval]] = None,
    ):
        super().__init__(func, loop_info)
        self.arg_intervals = dict(arg_intervals or {})
        self._thresholds = self._collect_thresholds()
        self._loop_defs = self._collect_loop_defs()
        self.solve()

    def _collect_thresholds(self) -> List[int]:
        """Widening thresholds: jumping to the nearest program constant
        (instead of straight to the type bound) lets loop bounds like
        ``i < n`` stabilize at ``n`` without losing the other bound to the
        wrap-soundness clamp."""
        points = {0, 1, -1}
        for inst in self.func.instructions():
            for op in inst.operands:
                if isinstance(op, Constant) and op.type.is_int:
                    value = int(op.value)
                    points.update((value - 1, value, value + 1))
            if inst.type.is_int:
                points.update(
                    (Interval.of_type(inst.type.bits).lo,
                     Interval.of_type(inst.type.bits).hi)
                )
        for arg in self.func.arguments:
            if arg.type.is_int:
                points.update(
                    (Interval.of_type(arg.type.bits).lo,
                     Interval.of_type(arg.type.bits).hi)
                )
                seeded = self.arg_intervals.get(arg)
                if seeded is not None:
                    for bound in (seeded.lo, seeded.hi):
                        if bound is not None:
                            points.update((bound - 1, bound, bound + 1))
        return sorted(points)

    def _collect_loop_defs(self) -> Dict[BasicBlock, set]:
        """Per loop header, the SSA values defined inside that loop — the
        only values whose ranges the loop itself can grow.  Widening just
        those keeps outer-loop invariants (already refined by enclosing
        branches) precise inside nested loops."""
        defs: Dict[BasicBlock, set] = {}
        for loop in self.loop_info.loops:
            defs[loop.header] = {
                inst
                for block in loop.blocks
                for inst in block.instructions
            }
        return defs

    def _widen_bound_up(self, bound: Optional[int]) -> Optional[int]:
        if bound is None:
            return None
        for t in self._thresholds:
            if t >= bound:
                return t
        return None

    def _widen_bound_down(self, bound: Optional[int]) -> Optional[int]:
        if bound is None:
            return None
        for t in reversed(self._thresholds):
            if t <= bound:
                return t
        return None

    def _widen_interval(self, older: Interval, newer: Interval) -> Interval:
        """``older ∇ newer`` with thresholds: a bound that moved jumps to
        the nearest enclosing threshold (or ∞ past the last one)."""
        if older.is_bottom:
            return newer
        if newer.is_bottom:
            return older
        lo = newer.lo
        if older.lo is not None and (newer.lo is None or newer.lo < older.lo):
            lo = self._widen_bound_down(newer.lo)
        hi = newer.hi
        if older.hi is not None and (newer.hi is None or newer.hi > older.hi):
            hi = self._widen_bound_up(newer.hi)
        return Interval(lo, hi)

    # Lattice ----------------------------------------------------------------

    def initial_state(self) -> _Env:
        return _Env()

    def join(self, a: _Env, b: _Env) -> _Env:
        values: Dict[Value, Interval] = {}
        for key, left in a.values.items():
            right = b.values.get(key)
            values[key] = left if right is None else left.join(right)
        for key, right in b.values.items():
            if key not in values:
                values[key] = right
        return _Env(values)

    def widen(self, old: _Env, new: _Env, block=None) -> _Env:
        loop_defs = self._loop_defs.get(block) if block is not None else None
        values: Dict[Value, Interval] = {}
        for key, newer in new.values.items():
            older = old.values.get(key)
            if older is None:
                values[key] = newer
            elif loop_defs is not None and key not in loop_defs:
                # The loop headed at ``block`` cannot grow this value's
                # range; plain join keeps enclosing-branch refinements.
                values[key] = newer
            else:
                values[key] = self._widen_interval(older, newer)
        return _Env(values)

    def copy_state(self, state: _Env) -> _Env:
        return state.copy()

    # Evaluation -------------------------------------------------------------

    def _eval(self, value: Value, env: _Env) -> Interval:
        if isinstance(value, Constant):
            if value.type.is_int or value.type.is_bool:
                return Interval.constant(int(value.value))
            return Interval.top()
        found = env.values.get(value)
        if found is not None:
            return found
        if isinstance(value, Argument):
            seeded = self.arg_intervals.get(value)
            if seeded is not None:
                return seeded
            if value.type.is_int:
                return Interval.of_type(value.type.bits)
            return Interval.top()
        if value.type.is_int or value.type.is_bool:
            return Interval.of_type(value.type.bits)
        return Interval.top()

    def transfer(self, block: BasicBlock, env: _Env) -> _Env:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                # Bound by edge_transfer; default to type range when no
                # analyzed edge bound it yet.
                if inst.type.is_int and inst not in env.values:
                    env.values[inst] = Interval.of_type(inst.type.bits)
                continue
            result = self._transfer_inst(inst, env)
            if result is not None:
                env.values[inst] = result
        return env

    def _transfer_inst(self, inst: Instruction, env: _Env) -> Optional[Interval]:
        if isinstance(inst, BinaryOp) and inst.type.is_int:
            lhs = self._eval(inst.lhs, env)
            rhs = self._eval(inst.rhs, env)
            exact = self._exact_binary(inst.opcode, lhs, rhs)
            return _clamp(exact, inst.type.bits)
        if isinstance(inst, ICmp):
            return Interval(0, 1)
        if isinstance(inst, Select) and inst.type.is_int:
            return self._eval(inst.operands[1], env).join(
                self._eval(inst.operands[2], env)
            )
        if isinstance(inst, Cast) and inst.type.is_int:
            if inst.opcode in ("sext", "zext", "trunc"):
                inner = self._eval(inst.operands[0], env)
                if inst.opcode == "zext":
                    src_bits = inst.operands[0].type.bits
                    if inner.lo is not None and inner.lo < 0:
                        inner = Interval(0, (1 << src_bits) - 1)
                return _clamp(inner, inst.type.bits)
            return Interval.of_type(inst.type.bits)  # fptosi
        if isinstance(inst, UnaryOp) and inst.type.is_int:
            if inst.opcode == "neg":
                inner = self._eval(inst.operands[0], env)
                return _clamp(inner.neg(), inst.type.bits)
            return Interval.of_type(inst.type.bits)  # not
        if inst.type.is_int or inst.type.is_bool:
            # Loads, calls and anything unhandled: the type range.
            return Interval.of_type(inst.type.bits)
        return None

    @staticmethod
    def _exact_binary(opcode: str, lhs: Interval, rhs: Interval) -> Interval:
        if opcode == "add":
            return lhs.add(rhs)
        if opcode == "sub":
            return lhs.sub(rhs)
        if opcode == "mul":
            return lhs.mul(rhs)
        if opcode == "shl":
            return lhs.shl(rhs)
        if opcode == "shr":
            return lhs.shr(rhs)
        if opcode == "rem":
            if (
                rhs.lo is not None and rhs.hi is not None
                and (rhs.lo > 0 or rhs.hi < 0)
            ):
                bound = max(abs(rhs.lo), abs(rhs.hi)) - 1
                if lhs.lo is not None and lhs.lo >= 0:
                    return Interval(0, bound)
                return Interval(-bound, bound)
            return Interval.top()
        if opcode == "div":
            if (
                None not in (lhs.lo, lhs.hi, rhs.lo, rhs.hi)
                and (rhs.lo > 0 or rhs.hi < 0)
            ):
                corners = [
                    _c_div(lhs.lo, rhs.lo), _c_div(lhs.lo, rhs.hi),
                    _c_div(lhs.hi, rhs.lo), _c_div(lhs.hi, rhs.hi),
                ]
                return Interval(min(corners), max(corners))
            return Interval.top()
        if opcode == "and":
            # Non-negative & non-negative stays within either operand.
            if (
                lhs.lo is not None and lhs.lo >= 0
                and rhs.lo is not None and rhs.lo >= 0
            ):
                his = [h for h in (lhs.hi, rhs.hi) if h is not None]
                return Interval(0, min(his) if his else None)
            return Interval.top()
        return Interval.top()  # or, xor

    # Branch refinement + phi binding ----------------------------------------

    def edge_transfer(self, pred: BasicBlock, succ: BasicBlock, env: _Env) -> _Env:
        term = pred.terminator
        if isinstance(term, CondBranch):
            cond = term.condition
            if isinstance(cond, ICmp):
                taken = succ is term.true_target
                # A two-way branch where both targets are ``succ`` refines
                # nothing; otherwise apply the (possibly negated) predicate.
                if term.true_target is not term.false_target:
                    pred_name = (
                        cond.predicate if taken else _NEGATE[cond.predicate]
                    )
                    lhs_v, rhs_v = cond.operands[0], cond.operands[1]
                    lhs, rhs = _refine_pair(
                        pred_name, self._eval(lhs_v, env), self._eval(rhs_v, env)
                    )
                    if not isinstance(lhs_v, Constant):
                        env.values[lhs_v] = lhs
                    if not isinstance(rhs_v, Constant):
                        env.values[rhs_v] = rhs
        for phi in succ.phis():
            if phi.type.is_int:
                env.values[phi] = self._eval(phi.incoming_for(pred), env)
        return env

    # Queries ----------------------------------------------------------------

    def interval_of(self, value: Value, block: Optional[BasicBlock] = None) -> Interval:
        """Range of ``value`` as observed at its definition (for
        instructions) or, with ``block``, at that block's entry."""
        if isinstance(value, Constant):
            if value.type.is_int or value.type.is_bool:
                return Interval.constant(int(value.value))
            return Interval.top()
        if block is not None:
            env = self.in_states.get(block)
            if env is not None and value in env.values:
                return env.values[value]
        if isinstance(value, Instruction) and value.parent is not None:
            env = self.out_states.get(value.parent)
            if env is not None and value in env.values:
                return env.values[value]
        if isinstance(value, Argument):
            seeded = self.arg_intervals.get(value)
            if seeded is not None:
                return seeded
        if value.type.is_int or value.type.is_bool:
            return Interval.of_type(value.type.bits)
        return Interval.top()

    def interval_at_use(self, value: Value, user: Instruction) -> Interval:
        """Range of ``value`` at the point ``user`` executes — per-block
        refinements (branch conditions) apply when ``value`` is defined
        outside the user's block."""
        block = user.parent
        if block is None or isinstance(value, Constant):
            return self.interval_of(value)
        if isinstance(value, Instruction) and value.parent is block:
            return self.interval_of(value)
        env = self.in_states.get(block)
        if env is not None and value in env.values:
            return env.values[value]
        return self.interval_of(value, block)

    def exact_result(self, inst: Instruction) -> Optional[Interval]:
        """Mathematically exact (pre-wrap) result range of an integer
        binary op at its program point, or None for other instructions.
        Comparing this against the type range proves wraparound."""
        if not (isinstance(inst, BinaryOp) and inst.type.is_int):
            return None
        lhs = self.interval_at_use(inst.lhs, inst)
        rhs = self.interval_at_use(inst.rhs, inst)
        return self._exact_binary(inst.opcode, lhs, rhs)

    def static_trip_bound(self, loop: Loop) -> Optional[int]:
        """Statically proven upper bound on the loop's trip count, from the
        induction phi's proven range and step (None when unprovable)."""
        phi = loop.induction_phi()
        if phi is None:
            return None
        step = None
        from ..analysis.loops import _increment_amount

        for value, pred in phi.incoming():
            if pred in loop.blocks:
                step = _increment_amount(value, phi)
        if not step:
            return None
        # Prefer the phi's range inside the loop body (past the header's
        # exit test) — the header range also contains the exit value.
        interval = None
        for succ in loop.header.successors:
            if succ in loop.blocks:
                env = self.in_states.get(succ)
                if env is not None and phi in env.values:
                    interval = env.values[phi]
                break
        if interval is None:
            interval = self.interval_of(phi, loop.header)
        span = interval.span()
        if span is None:
            return None
        return span // abs(step) + 1


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


class ModuleIntervalAnalysis:
    """Interval analyses for every defined function, with interprocedural
    argument seeding along the call graph (callers analyzed first)."""

    def __init__(self, module: Module):
        self.module = module
        self.callgraph = CallGraph(module)
        self._analyses: Dict[Function, IntervalAnalysis] = {}
        order = [
            f for f in reversed(self.callgraph.topological_order())
            if not f.is_declaration
        ]
        analyzed: Dict[Function, IntervalAnalysis] = {}
        for func in order:
            analyzed[func] = IntervalAnalysis(
                func, arg_intervals=self._arg_seed(func, analyzed)
            )
        self._analyses = analyzed

    def _arg_seed(
        self, func: Function, analyzed: Dict[Function, IntervalAnalysis]
    ) -> Dict[Argument, Interval]:
        """Join of actual-argument ranges over all intra-module call sites;
        ⊤ (type range) when the function has none or sits in a recursion
        cycle whose callers are not yet analyzed."""
        calls: List[Call] = []
        for caller in self.module.defined_functions():
            for inst in caller.instructions():
                if isinstance(inst, Call) and inst.callee is func:
                    calls.append(inst)
        if not calls:
            return {}
        seed: Dict[Argument, Interval] = {}
        for formal in func.arguments:
            if not formal.type.is_int:
                continue
            joined: Optional[Interval] = None
            for call in calls:
                actual = call.operands[formal.index]
                if isinstance(actual, Constant):
                    interval = Interval.constant(int(actual.value))
                else:
                    caller = call.parent.parent if call.parent else None
                    caller_analysis = analyzed.get(caller)
                    if caller_analysis is None:
                        interval = Interval.of_type(formal.type.bits)
                    else:
                        interval = caller_analysis.interval_at_use(actual, call)
                joined = interval if joined is None else joined.join(interval)
            if joined is not None:
                seed[formal] = joined
        return seed

    def for_function(self, func: Function) -> IntervalAnalysis:
        if func not in self._analyses:
            self._analyses[func] = IntervalAnalysis(func)
        return self._analyses[func]
